//! Run budgets and cooperative cancellation.
//!
//! One [`CancelToken`] is shared by every phase of a mining run. The
//! range-graph pair sweep and both DFS phases poll it; the slice-merge loop
//! charges retained logical bytes against the memory budget. Exhausting a
//! budget never errors a run that has already started — it truncates it,
//! with the reason recorded on
//! [`MiningResult::truncation`](crate::MiningResult::truncation).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tricluster_obs::{names, timeline};

/// Which budget cut a run short. Stable machine-readable names via
/// [`TruncationReason::as_str`] (these appear in the v2 report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// [`Params::max_candidates`](crate::Params::max_candidates) exhausted.
    CandidateBudget,
    /// [`Params::deadline`](crate::Params::deadline) expired.
    Deadline,
    /// [`Params::max_memory`](crate::Params::max_memory) exhausted.
    MemoryBudget,
    /// At least one isolated worker unit failed; its results are missing.
    WorkerFailure,
    /// The run's [`CancelHandle`] was tripped from outside (job cancelled).
    Cancelled,
}

impl TruncationReason {
    /// Stable lowercase name, matching the CLI flag that configures the
    /// budget: `max_candidates`, `deadline`, `max_memory`, `worker_failure`,
    /// `cancelled`.
    pub fn as_str(self) -> &'static str {
        match self {
            TruncationReason::CandidateBudget => "max_candidates",
            TruncationReason::Deadline => "deadline",
            TruncationReason::MemoryBudget => "max_memory",
            TruncationReason::WorkerFailure => "worker_failure",
            TruncationReason::Cancelled => "cancelled",
        }
    }
}

/// Resolves the single reported [`TruncationReason`] when several trip
/// conditions raced within one run.
///
/// The documented precedence is `cancelled > deadline > max_memory >
/// max_candidates > worker_failure`: an explicit cancellation outranks any
/// budget (the caller asked for the stop), time outranks space (a blown
/// deadline usually *causes* the later trips), both budgets outrank the
/// candidate cap, and worker failures are reported only when nothing else
/// already truncated the run. The function is a pure precedence fold, so
/// concurrent trips from different threads always resolve identically no
/// matter which latch was observed first.
pub fn resolve_truncation(
    cancelled: bool,
    deadline: bool,
    memory: bool,
    candidates: bool,
    worker_failure: bool,
) -> Option<TruncationReason> {
    if cancelled {
        Some(TruncationReason::Cancelled)
    } else if deadline {
        Some(TruncationReason::Deadline)
    } else if memory {
        Some(TruncationReason::MemoryBudget)
    } else if candidates {
        Some(TruncationReason::CandidateBudget)
    } else if worker_failure {
        Some(TruncationReason::WorkerFailure)
    } else {
        None
    }
}

/// Externally trippable kill switch for one run.
///
/// A handle is cheap to clone and safe to keep after the run ends; tripping
/// it makes every [`CancelToken::deadline_exceeded`] poll of the associated
/// token return `true`, so the run winds down through the exact same
/// cooperative early-exit paths a deadline uses. The run then reports
/// [`TruncationReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    tripped: Arc<AtomicBool>,
}

impl CancelHandle {
    /// A fresh, untripped handle.
    pub fn new() -> Self {
        CancelHandle::default()
    }

    /// Requests cancellation. Idempotent; returns `true` on the call that
    /// actually tripped the handle.
    pub fn cancel(&self) -> bool {
        !self.tripped.swap(true, Ordering::Release)
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }
}

/// Shared cancellation state of one mining run.
///
/// Deadline checks are lazy: the first poll past the deadline latches
/// [`CancelToken::deadline_was_hit`], and only polls that actually skip work
/// happen before work, so a run that finishes under its deadline is never
/// marked truncated. Memory charges are made from the single-threaded merge
/// loop in slice order, keeping memory truncation byte-deterministic across
/// thread counts (unlike deadline truncation, which is inherently
/// wall-clock-dependent).
#[derive(Debug)]
pub struct CancelToken {
    deadline: Option<Instant>,
    deadline_hit: AtomicBool,
    max_memory: Option<u64>,
    charged: AtomicU64,
    memory_hit: AtomicBool,
    kill: CancelHandle,
    kill_seen: AtomicBool,
}

impl CancelToken {
    /// A token with the given budgets; `deadline` counts from now.
    pub fn new(deadline: Option<Duration>, max_memory: Option<u64>) -> Self {
        CancelToken::with_handle(deadline, max_memory, CancelHandle::new())
    }

    /// A token with the given budgets whose polls also observe an external
    /// [`CancelHandle`] (tripping the handle stops the run through the same
    /// cooperative paths as a deadline).
    pub fn with_handle(
        deadline: Option<Duration>,
        max_memory: Option<u64>,
        handle: CancelHandle,
    ) -> Self {
        CancelToken {
            deadline: deadline.map(|d| Instant::now() + d),
            deadline_hit: AtomicBool::new(false),
            max_memory,
            charged: AtomicU64::new(0),
            memory_hit: AtomicBool::new(false),
            kill: handle,
            kill_seen: AtomicBool::new(false),
        }
    }

    /// A token that never cancels.
    pub fn unbounded() -> Self {
        CancelToken::new(None, None)
    }

    /// Polls the deadline *and* the external kill switch. Once it returns
    /// `true` it stays `true`. Without a deadline or a tripped handle this
    /// is a single relaxed load and no clock read.
    #[inline]
    pub fn deadline_exceeded(&self) -> bool {
        if self.kill.is_cancelled() {
            // `swap` so exactly the poll that first observes the trip drops
            // the timeline marker; the latch also makes `cancel_was_hit`
            // reflect whether the run actually *saw* the request.
            if !self.kill_seen.swap(true, Ordering::Relaxed) {
                timeline::instant(names::T_CANCELLED);
            }
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= deadline {
            // `swap` so exactly the poll that latches drops the timeline
            // marker — later polls (and other workers) see `true` here.
            if !self.deadline_hit.swap(true, Ordering::Relaxed) {
                timeline::instant(names::T_DEADLINE);
            }
            return true;
        }
        false
    }

    /// Whether a deadline poll ever fired (without reading the clock again —
    /// used at result assembly so the act of *checking* cannot mark a
    /// completed run truncated).
    pub fn deadline_was_hit(&self) -> bool {
        self.deadline_hit.load(Ordering::Relaxed)
    }

    /// Charges `bytes` of retained logical memory against the budget.
    /// Returns `false` once the budget is exceeded (the charge that tips
    /// over and every later one); the caller drops the data it was about to
    /// retain. Unlimited (always `true`) when no budget is configured.
    pub fn charge(&self, bytes: u64) -> bool {
        let total = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let Some(budget) = self.max_memory else {
            return true;
        };
        if total > budget {
            if !self.memory_hit.swap(true, Ordering::Relaxed) {
                timeline::instant(names::T_MEMORY);
            }
            return false;
        }
        !self.memory_hit.load(Ordering::Relaxed)
    }

    /// Whether any charge exceeded the memory budget.
    pub fn memory_was_hit(&self) -> bool {
        self.memory_hit.load(Ordering::Relaxed)
    }

    /// Whether a poll ever observed the external kill switch. Like
    /// [`deadline_was_hit`](CancelToken::deadline_was_hit) this reads only
    /// the latch: a cancellation requested *after* the last poll of a
    /// completed run does not retroactively mark it truncated.
    pub fn cancel_was_hit(&self) -> bool {
        self.kill_seen.load(Ordering::Relaxed)
    }

    /// The external kill switch this token polls.
    pub fn cancel_handle(&self) -> &CancelHandle {
        &self.kill
    }

    /// Total logical bytes charged so far.
    pub fn charged_bytes(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_cancels() {
        let t = CancelToken::unbounded();
        assert!(!t.deadline_exceeded());
        assert!(t.charge(u64::MAX / 2));
        assert!(!t.deadline_was_hit());
        assert!(!t.memory_was_hit());
    }

    #[test]
    fn zero_deadline_fires_immediately_and_latches() {
        let t = CancelToken::new(Some(Duration::ZERO), None);
        assert!(t.deadline_exceeded());
        assert!(t.deadline_was_hit());
        assert!(t.deadline_exceeded());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::new(Some(Duration::from_secs(3600)), None);
        assert!(!t.deadline_exceeded());
        assert!(!t.deadline_was_hit());
    }

    #[test]
    fn memory_budget_trips_once_exceeded_and_stays_tripped() {
        let t = CancelToken::new(None, Some(100));
        assert!(t.charge(60));
        assert!(!t.charge(50), "60 + 50 > 100");
        assert!(t.memory_was_hit());
        assert!(!t.charge(1), "stays tripped");
        assert_eq!(t.charged_bytes(), 111);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(TruncationReason::CandidateBudget.as_str(), "max_candidates");
        assert_eq!(TruncationReason::Deadline.as_str(), "deadline");
        assert_eq!(TruncationReason::MemoryBudget.as_str(), "max_memory");
        assert_eq!(TruncationReason::WorkerFailure.as_str(), "worker_failure");
        assert_eq!(TruncationReason::Cancelled.as_str(), "cancelled");
    }

    #[test]
    fn handle_trip_is_seen_by_polls_and_latches() {
        let handle = CancelHandle::new();
        let t = CancelToken::with_handle(None, None, handle.clone());
        assert!(!t.deadline_exceeded());
        assert!(!t.cancel_was_hit());
        assert!(handle.cancel(), "first trip reports true");
        assert!(!handle.cancel(), "second trip is a no-op");
        assert!(t.deadline_exceeded());
        assert!(t.cancel_was_hit());
        assert!(!t.deadline_was_hit(), "cancel is not a deadline trip");
    }

    #[test]
    fn unpolled_trip_is_not_recorded_as_hit() {
        let handle = CancelHandle::new();
        let t = CancelToken::with_handle(None, None, handle.clone());
        handle.cancel();
        // The run finished without ever polling: the latch stays clear.
        assert!(!t.cancel_was_hit());
    }

    #[test]
    fn truncation_precedence_is_total() {
        use TruncationReason::*;
        assert_eq!(
            resolve_truncation(true, true, true, true, true),
            Some(Cancelled)
        );
        assert_eq!(
            resolve_truncation(false, true, true, true, true),
            Some(Deadline)
        );
        assert_eq!(
            resolve_truncation(false, false, true, true, true),
            Some(MemoryBudget)
        );
        assert_eq!(
            resolve_truncation(false, false, false, true, true),
            Some(CandidateBudget)
        );
        assert_eq!(
            resolve_truncation(false, false, false, false, true),
            Some(WorkerFailure)
        );
        assert_eq!(resolve_truncation(false, false, false, false, false), None);
    }
}
