//! Typed errors of the mining front door.
//!
//! [`mine`](crate::mine) and friends return `Result<MiningResult, MineError>`:
//! anything that makes a run impossible (bad parameters, unusable input, a
//! memory budget smaller than the input itself) is a typed error, while
//! anything that merely cuts a run short (budgets, isolated worker failures)
//! yields an `Ok` result flagged truncated. See DESIGN.md "Failure model &
//! graceful degradation".

use crate::params::ParamsError;
use std::fmt;

/// Why a mining run could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum MineError {
    /// The parameters failed [`Params::validate`](crate::Params::validate).
    InvalidParams(ParamsError),
    /// The matrix contains an infinite cell. `NaN` is the documented
    /// missing-value marker and is tolerated (skipped by ratio
    /// classification); explicit `±inf` is always a data error. Coordinates
    /// name the first offending cell.
    NonFiniteInput {
        /// Gene (row) index of the first infinite cell.
        gene: usize,
        /// Sample (column) index of the first infinite cell.
        sample: usize,
        /// Time (slice) index of the first infinite cell.
        time: usize,
        /// The offending value (`+inf` or `-inf`).
        value: f64,
    },
    /// The matrix has cells but none of them is usable: every cell is NaN
    /// (all-missing input), so no ratio can ever be formed.
    DegenerateInput {
        /// Human-readable description of the degeneracy.
        reason: String,
    },
    /// [`Params::max_memory`](crate::Params::max_memory) is smaller than the
    /// logical size of the input matrix itself — no truncation strategy can
    /// satisfy the budget, so the run refuses to start.
    MemoryBudget {
        /// Logical bytes the run needs at minimum (the matrix).
        required: u64,
        /// The configured budget.
        budget: u64,
    },
    /// An error injected through a [failpoint](crate::FAILPOINTS) site with
    /// an error channel. Only reachable in builds with the `failpoints`
    /// feature and an armed site.
    Fault {
        /// The failpoint site that fired.
        site: &'static str,
        /// The injected message.
        message: String,
    },
    /// The pipeline panicked outside every worker-isolation boundary; the
    /// panic was caught at the API boundary and converted. The process never
    /// aborts, but no partial result is available.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            MineError::NonFiniteInput {
                gene,
                sample,
                time,
                value,
            } => write!(
                f,
                "non-finite input: cell (gene {gene}, sample {sample}, time {time}) is {value}"
            ),
            MineError::DegenerateInput { reason } => write!(f, "degenerate input: {reason}"),
            MineError::MemoryBudget { required, budget } => write!(
                f,
                "memory budget too small: the input matrix alone needs {required} logical bytes \
                 but the budget is {budget}"
            ),
            MineError::Fault { site, message } => {
                write!(f, "injected fault at {site}: {message}")
            }
            MineError::Panic { message } => {
                write!(f, "mining pipeline panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MineError::InvalidParams(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for MineError {
    fn from(e: ParamsError) -> Self {
        MineError::InvalidParams(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cell() {
        let e = MineError::NonFiniteInput {
            gene: 3,
            sample: 1,
            time: 2,
            value: f64::INFINITY,
        };
        let s = e.to_string();
        assert!(s.contains("gene 3"), "{s}");
        assert!(s.contains("sample 1"), "{s}");
        assert!(s.contains("time 2"), "{s}");
    }

    #[test]
    fn params_error_converts_and_chains() {
        let pe = crate::Params::builder().min_genes(0).build().unwrap_err();
        let e: MineError = pe.clone().into();
        assert_eq!(e, MineError::InvalidParams(pe));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("genes"));
    }

    #[test]
    fn memory_budget_display_has_both_numbers() {
        let e = MineError::MemoryBudget {
            required: 1600,
            budget: 100,
        };
        let s = e.to_string();
        assert!(s.contains("1600") && s.contains("100"), "{s}");
    }
}
