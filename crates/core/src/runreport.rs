//! The structured `--report-json` document (schema `tricluster.report/v2`)
//! and its validator.
//!
//! Version history:
//!
//! * **v1** — `schema`, `matrix`, `clusters`, `truncated`, `timings`,
//!   `metrics`, and `report` (counters + spans).
//! * **v2** — adds three top-level sections: `histograms` (value
//!   distributions, input-determined and therefore byte-identical across
//!   thread counts), `memory` (logical data-structure sizes plus measured
//!   allocator counters when a tracking allocator is installed), and
//!   `search_space` (nodes expanded, prunes by reason, maximality
//!   rejections, dedup hits). Every v1 key is preserved.
//!
//! A degraded run (budget truncation or isolated worker panics) additionally
//! carries a top-level `fault` object with the machine-readable
//! `truncation_reason` and, when any worker was lost, a `worker_failures`
//! array. Clean runs omit the object entirely so their documents stay
//! byte-identical to reports from before the fault layer existed.
//!
//! The builder lives in core (not the CLI) so library users and the schema
//! validator share one definition.

use crate::metrics::Metrics;
use crate::miner::MiningResult;
use tricluster_matrix::Matrix3;
use tricluster_obs::json::Json;
use tricluster_obs::{names, RunReport};

/// The current report schema identifier.
pub const SCHEMA_V2: &str = "tricluster.report/v2";

/// Builds the full v2 report document.
pub fn report_to_json_v2(
    m: &Matrix3,
    result: &MiningResult,
    report: &RunReport,
    met: &Metrics,
) -> Json {
    let t = &result.timings;
    let secs = |d: std::time::Duration| Json::F64(d.as_secs_f64());
    Json::obj()
        .with("schema", Json::Str(SCHEMA_V2.into()))
        .with(
            "matrix",
            Json::obj()
                .with("genes", Json::U64(m.n_genes() as u64))
                .with("samples", Json::U64(m.n_samples() as u64))
                .with("times", Json::U64(m.n_times() as u64)),
        )
        .with("clusters", Json::U64(result.triclusters.len() as u64))
        .with("truncated", Json::Bool(result.truncated))
        .with(
            "timings",
            Json::obj()
                .with("slices_wall_secs", secs(t.slices_wall))
                .with("range_graphs_cpu_secs", secs(t.range_graphs))
                .with("biclusters_cpu_secs", secs(t.biclusters))
                .with("triclusters_secs", secs(t.triclusters))
                .with("prune_secs", secs(t.prune))
                .with("total_secs", secs(t.total())),
        )
        .with(
            "metrics",
            Json::obj()
                .with("cluster_count", Json::U64(met.cluster_count as u64))
                .with("element_sum", Json::U64(met.element_sum as u64))
                .with("coverage", Json::U64(met.coverage as u64))
                .with("overlap", Json::F64(met.overlap))
                .with("fluctuation_gene", Json::F64(met.fluctuation_gene))
                .with("fluctuation_sample", Json::F64(met.fluctuation_sample))
                .with("fluctuation_time", Json::F64(met.fluctuation_time)),
        )
        .with("report", report.to_json())
        .with("histograms", histograms_json(report))
        .with("memory", memory_json(report))
        .with("search_space", search_space_json(report))
        .with("meta", meta_json(result.fanout.threads))
        .maybe_with("fault", fault_json(result))
}

/// The `meta` section: build/environment provenance (crate version, git
/// commit when the process runs inside a checkout, host triple, worker
/// count) so archived reports are self-describing. Host- and
/// checkout-dependent by nature, so it is never part of the deterministic
/// sections.
pub fn meta_json(threads: usize) -> Json {
    Json::obj()
        .with("version", Json::Str(env!("CARGO_PKG_VERSION").into()))
        .maybe_with("git", git_hash().map(Json::Str))
        .with(
            "host",
            Json::Str(format!(
                "{}-{}",
                std::env::consts::ARCH,
                std::env::consts::OS
            )),
        )
        .with("threads", Json::U64(threads as u64))
}

/// Best-effort current commit hash: walks up from the working directory to
/// the nearest `.git` and follows `HEAD` through one level of ref
/// indirection (loose ref file, then `packed-refs`). `None` anywhere
/// outside a checkout — no git binary is invoked.
fn git_hash() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return git_head_hash(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn git_head_hash(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // detached HEAD carries the hash directly
        return (head.len() >= 7).then(|| head.to_string());
    };
    if let Ok(loose) = std::fs::read_to_string(git.join(refname)) {
        let loose = loose.trim();
        if !loose.is_empty() {
            return Some(loose.to_string());
        }
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed.lines().find_map(|line| {
        let (hash, name) = line.split_once(' ')?;
        (name.trim() == refname).then(|| hash.to_string())
    })
}

/// The `fault` section of a degraded run; `None` for clean runs.
pub fn fault_json(result: &MiningResult) -> Option<Json> {
    let reason = result.truncation?;
    let mut obj = Json::obj().with("truncation_reason", Json::Str(reason.as_str().into()));
    if !result.worker_failures.is_empty() {
        obj = obj.with(
            "worker_failures",
            Json::Arr(
                result
                    .worker_failures
                    .iter()
                    .map(|f| {
                        Json::obj()
                            .with("phase", Json::Str(f.phase.into()))
                            .with("unit", Json::Str(f.unit.clone()))
                            .with("message", Json::Str(f.message.clone()))
                    })
                    .collect(),
            ),
        );
    }
    Some(obj)
}

/// The `histograms` section: every value histogram of the report. These are
/// input-determined (no wall-clock values), so the section renders
/// byte-identically across thread counts; span latency distributions live
/// under `report.spans` instead.
pub fn histograms_json(report: &RunReport) -> Json {
    Json::Obj(
        report
            .histograms
            .iter()
            .map(|(k, h)| (k.to_string(), h.to_json()))
            .collect(),
    )
}

/// The `memory` section: deterministic logical sizes, plus — when the
/// binary installed the tracking allocator (feature `track-alloc`) — an
/// `alloc` sub-object with measured totals and a `phase_bytes` sub-object
/// attributing bytes and allocation calls to each pipeline phase.
pub fn memory_json(report: &RunReport) -> Json {
    let c = |name| Json::U64(report.counter(name));
    let mut obj = Json::obj()
        .with("matrix_bytes", c(names::M_MATRIX_BYTES))
        .with("rangegraph_peak_bytes", c(names::M_RANGEGRAPH_BYTES))
        .with("bicluster_bytes", c(names::M_BICLUSTER_BYTES))
        .with("tricluster_bytes", c(names::M_TRICLUSTER_BYTES));
    if report.counter(names::M_ALLOC_TOTAL_CALLS) > 0 {
        let phase = |bytes, allocs| {
            Json::obj()
                .with("bytes", c(bytes))
                .with("allocs", c(allocs))
        };
        obj = obj
            .with(
                "alloc",
                Json::obj()
                    .with("total_bytes", c(names::M_ALLOC_TOTAL_BYTES))
                    .with("total_calls", c(names::M_ALLOC_TOTAL_CALLS))
                    .with("peak_live_bytes", c(names::M_ALLOC_PEAK_BYTES))
                    .with(
                        "phases",
                        Json::obj()
                            .with("slices_bytes", c(names::M_ALLOC_SLICES_BYTES))
                            .with("triclusters_bytes", c(names::M_ALLOC_TRICLUSTERS_BYTES))
                            .with("prune_bytes", c(names::M_ALLOC_PRUNE_BYTES)),
                    ),
            )
            .with(
                "phase_bytes",
                Json::obj()
                    .with(
                        "slices",
                        phase(names::M_ALLOC_SLICES_BYTES, names::M_ALLOC_SLICES_CALLS),
                    )
                    .with(
                        "triclusters",
                        phase(
                            names::M_ALLOC_TRICLUSTERS_BYTES,
                            names::M_ALLOC_TRICLUSTERS_CALLS,
                        ),
                    )
                    .with(
                        "prune",
                        phase(names::M_ALLOC_PRUNE_BYTES, names::M_ALLOC_PRUNE_CALLS),
                    ),
            );
    }
    obj
}

/// The `search_space` section: how much of the candidate space the DFS
/// phases expanded and why the rest was cut.
pub fn search_space_json(report: &RunReport) -> Json {
    let c = |name| report.counter(name);
    Json::obj()
        .with(
            "nodes_expanded",
            Json::obj()
                .with("bicluster", Json::U64(c(names::BC_NODES)))
                .with("tricluster", Json::U64(c(names::TC_NODES)))
                .with("total", Json::U64(c(names::BC_NODES) + c(names::TC_NODES))),
        )
        .with(
            "prunes",
            Json::obj()
                .with("delta_threshold", Json::U64(c(names::BC_REJECTED_DELTA)))
                .with("too_small", Json::U64(c(names::TC_REJECTED_SMALL)))
                .with("incoherent", Json::U64(c(names::TC_REJECTED_INCOHERENT)))
                .with("merged", Json::U64(c(names::PR_MERGED)))
                .with("deleted_pairwise", Json::U64(c(names::PR_DELETED_PAIRWISE)))
                .with(
                    "deleted_multicover",
                    Json::U64(c(names::PR_DELETED_MULTICOVER)),
                ),
        )
        .with(
            "maximality_rejections",
            Json::obj()
                .with("bicluster", Json::U64(c(names::BC_REJECTED_SUBSUMED)))
                .with(
                    "bicluster_cross_branch",
                    Json::U64(c(names::BC_MERGE_SUBSUMED)),
                )
                .with("tricluster", Json::U64(c(names::TC_REJECTED_SUBSUMED)))
                .with("bicluster_replaced", Json::U64(c(names::BC_REPLACED)))
                .with("tricluster_replaced", Json::U64(c(names::TC_REPLACED))),
        )
        .with(
            "dedup_hits",
            Json::obj()
                .with("bicluster", Json::U64(c(names::BC_DEDUP_HITS)))
                .with("tricluster", Json::U64(c(names::TC_DEDUP_HITS))),
        )
        .with(
            "budget",
            Json::obj()
                .with("bicluster_spent", Json::U64(c(names::BC_BUDGET_SPENT)))
                .with("tricluster_spent", Json::U64(c(names::TC_BUDGET_SPENT))),
        )
}

/// The `--explain` document: the three v2 profile sections on their own.
pub fn explain_json(report: &RunReport) -> Json {
    Json::obj()
        .with("schema", Json::Str("tricluster.explain/v1".into()))
        .with("search_space", search_space_json(report))
        .with("histograms", histograms_json(report))
        .with("memory", memory_json(report))
}

/// Human rendering of the search-space profile (the `-vv` view).
pub fn render_search_space_human(report: &RunReport) -> String {
    let c = |name| report.counter(name);
    let mut out = String::from("search space:\n");
    out.push_str(&format!(
        "  nodes expanded        {:>12}  (bicluster {}, tricluster {})\n",
        c(names::BC_NODES) + c(names::TC_NODES),
        c(names::BC_NODES),
        c(names::TC_NODES),
    ));
    out.push_str(&format!(
        "  pruned                {:>12}  (delta {}, small {}, incoherent {})\n",
        c(names::BC_REJECTED_DELTA)
            + c(names::TC_REJECTED_SMALL)
            + c(names::TC_REJECTED_INCOHERENT),
        c(names::BC_REJECTED_DELTA),
        c(names::TC_REJECTED_SMALL),
        c(names::TC_REJECTED_INCOHERENT),
    ));
    out.push_str(&format!(
        "  maximality rejections {:>12}  (bicluster {}, cross-branch {}, tricluster {})\n",
        c(names::BC_REJECTED_SUBSUMED)
            + c(names::BC_MERGE_SUBSUMED)
            + c(names::TC_REJECTED_SUBSUMED),
        c(names::BC_REJECTED_SUBSUMED),
        c(names::BC_MERGE_SUBSUMED),
        c(names::TC_REJECTED_SUBSUMED),
    ));
    out.push_str(&format!(
        "  dedup hits            {:>12}  (bicluster {}, tricluster {})\n",
        c(names::BC_DEDUP_HITS) + c(names::TC_DEDUP_HITS),
        c(names::BC_DEDUP_HITS),
        c(names::TC_DEDUP_HITS),
    ));
    out
}

/// Validates a parsed v2 report document: schema string, all v1-era keys,
/// and the three v2 sections with their required members. Returns the first
/// problem found.
pub fn validate_v2(doc: &Json) -> Result<(), String> {
    let need = |path: &[&str]| -> Result<&Json, String> {
        doc.get_path(path)
            .ok_or_else(|| format!("missing key: {}", path.join(".")))
    };
    match need(&["schema"])?.as_str() {
        Some(SCHEMA_V2) => {}
        other => return Err(format!("schema is {other:?}, want {SCHEMA_V2:?}")),
    }
    // v1 compatibility: every key a v1 consumer reads must still exist.
    for path in [
        &["matrix", "genes"][..],
        &["matrix", "samples"],
        &["matrix", "times"],
        &["clusters"],
        &["truncated"],
        &["timings", "slices_wall_secs"],
        &["timings", "range_graphs_cpu_secs"],
        &["timings", "biclusters_cpu_secs"],
        &["timings", "triclusters_secs"],
        &["timings", "prune_secs"],
        &["timings", "total_secs"],
        &["metrics", "cluster_count"],
        &["metrics", "element_sum"],
        &["metrics", "coverage"],
        &["metrics", "overlap"],
        &["report", "counters"],
        &["report", "spans"],
    ] {
        need(path)?;
    }
    // v2 sections.
    let hists = need(&["histograms"])?
        .as_obj()
        .ok_or("histograms is not an object")?;
    for (name, h) in hists {
        for key in ["count", "sum", "min", "max", "mean", "p50", "p95", "p99"] {
            if h.get(key).is_none() {
                return Err(format!("histogram {name} missing {key}"));
            }
        }
        if h.get("buckets").and_then(Json::as_arr).is_none() {
            return Err(format!("histogram {name} missing buckets array"));
        }
    }
    for key in [
        "matrix_bytes",
        "rangegraph_peak_bytes",
        "bicluster_bytes",
        "tricluster_bytes",
    ] {
        need(&["memory", key])?;
    }
    if need(&["memory", "matrix_bytes"])?.as_u64() == Some(0) {
        return Err("memory.matrix_bytes is zero".into());
    }
    // Measured allocator sections travel together: a document with
    // `memory.alloc` must also carry the per-phase attribution.
    if doc.get_path(&["memory", "alloc"]).is_some() {
        for phase in ["slices", "triclusters", "prune"] {
            for key in ["bytes", "allocs"] {
                if doc
                    .get_path(&["memory", "phase_bytes", phase, key])
                    .and_then(Json::as_u64)
                    .is_none()
                {
                    return Err(format!(
                        "memory.phase_bytes.{phase}.{key} missing or not an integer"
                    ));
                }
            }
        }
    }
    for path in [
        &["search_space", "nodes_expanded", "total"][..],
        &["search_space", "prunes"],
        &["search_space", "maximality_rejections"],
        &["search_space", "dedup_hits"],
        &["search_space", "budget"],
    ] {
        need(path)?;
    }
    // Optional `meta` section: build provenance stamped by newer writers.
    if let Some(meta) = doc.get("meta") {
        for key in ["version", "host"] {
            if meta.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("meta.{key} missing or not a string"));
            }
        }
        if meta.get("threads").and_then(Json::as_u64).is_none() {
            return Err("meta.threads missing or not an integer".into());
        }
    }
    // Optional `fault` section: present exactly when the run degraded.
    if let Some(fault) = doc.get("fault") {
        if doc.get("truncated").and_then(Json::as_bool) != Some(true) {
            return Err("fault section present but truncated is not true".into());
        }
        let reason = fault
            .get("truncation_reason")
            .and_then(Json::as_str)
            .ok_or("fault.truncation_reason missing or not a string")?;
        if ![
            "max_candidates",
            "deadline",
            "max_memory",
            "worker_failure",
            "cancelled",
        ]
        .contains(&reason)
        {
            return Err(format!("unknown fault.truncation_reason {reason:?}"));
        }
        if let Some(failures) = fault.get("worker_failures") {
            let arr = failures
                .as_arr()
                .ok_or("fault.worker_failures is not an array")?;
            if arr.is_empty() {
                return Err("fault.worker_failures is empty (omit the key instead)".into());
            }
            for (i, f) in arr.iter().enumerate() {
                for key in ["phase", "unit", "message"] {
                    if f.get(key).and_then(Json::as_str).is_none() {
                        return Err(format!("fault.worker_failures[{i}].{key} missing"));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cluster_metrics;
    use crate::miner::mine_observed;
    use crate::params::Params;
    use crate::testdata::paper_table1;
    use tricluster_obs::Recorder;

    fn table1_doc(threads: usize) -> Json {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .threads(threads)
            .build()
            .unwrap();
        let result = mine_observed(&m, &p, &Recorder::new()).unwrap();
        let met = cluster_metrics(&m, &result.triclusters);
        report_to_json_v2(&m, &result, &result.report, &met)
    }

    #[test]
    fn v2_document_validates_and_sections_are_populated() {
        let doc = table1_doc(1);
        validate_v2(&doc).unwrap();
        assert!(
            !doc.get("histograms").unwrap().as_obj().unwrap().is_empty(),
            "histograms section must be non-empty"
        );
        assert!(
            doc.get_path(&["search_space", "nodes_expanded", "total"])
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(
            doc.get_path(&["memory", "matrix_bytes"]).unwrap().as_u64(),
            Some(10 * 7 * 2 * 8)
        );
        // no tracking allocator in unit tests: no measured alloc object
        assert!(doc.get_path(&["memory", "alloc"]).is_none());
    }

    #[test]
    fn v2_profile_sections_render_identically_across_threads() {
        let render = |threads| {
            let doc = table1_doc(threads);
            (
                doc.get("histograms").unwrap().render(),
                doc.get("memory").unwrap().render(),
                doc.get("search_space").unwrap().render(),
            )
        };
        assert_eq!(render(1), render(4));
    }

    #[test]
    fn clean_runs_omit_the_fault_section() {
        let doc = table1_doc(1);
        assert!(doc.get("fault").is_none());
    }

    #[test]
    fn truncated_runs_carry_a_validated_fault_section() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(1)
            .build()
            .unwrap();
        let result = mine_observed(&m, &p, &Recorder::new()).unwrap();
        assert!(result.truncated, "a 1-node budget must truncate Table 1");
        let met = cluster_metrics(&m, &result.triclusters);
        let doc = report_to_json_v2(&m, &result, &result.report, &met);
        validate_v2(&doc).unwrap();
        assert_eq!(doc.get("truncated").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get_path(&["fault", "truncation_reason"])
                .and_then(Json::as_str),
            Some("max_candidates")
        );
        // no workers died, so no worker_failures array
        assert!(doc.get_path(&["fault", "worker_failures"]).is_none());
    }

    #[test]
    fn validator_rejects_malformed_fault_sections() {
        let base = table1_doc(1);
        let with_fault = |fault: Json| {
            let Json::Obj(fields) = &base else {
                panic!("doc is not an object")
            };
            let mut fields: Vec<(String, Json)> = fields.clone();
            for (k, v) in fields.iter_mut() {
                if k == "truncated" {
                    *v = Json::Bool(true);
                }
            }
            Json::Obj(fields).with("fault", fault)
        };
        // a well-formed fault section passes
        let ok = with_fault(
            Json::obj()
                .with("truncation_reason", Json::Str("deadline".into()))
                .with(
                    "worker_failures",
                    Json::Arr(vec![Json::obj()
                        .with("phase", Json::Str("slice".into()))
                        .with("unit", Json::Str("t=0".into()))
                        .with("message", Json::Str("boom".into()))]),
                ),
        );
        validate_v2(&ok).unwrap();
        // unknown reason, missing reason, empty failure list all fail
        let e = validate_v2(&with_fault(
            Json::obj().with("truncation_reason", Json::Str("cosmic_rays".into())),
        ))
        .unwrap_err();
        assert!(e.contains("truncation_reason"), "{e}");
        let e = validate_v2(&with_fault(Json::obj())).unwrap_err();
        assert!(e.contains("truncation_reason"), "{e}");
        let e = validate_v2(&with_fault(
            Json::obj()
                .with("truncation_reason", Json::Str("worker_failure".into()))
                .with("worker_failures", Json::Arr(vec![])),
        ))
        .unwrap_err();
        assert!(e.contains("worker_failures"), "{e}");
        // fault on a run not marked truncated is inconsistent
        let e = validate_v2(&base.clone().with(
            "fault",
            Json::obj().with("truncation_reason", Json::Str("deadline".into())),
        ))
        .unwrap_err();
        assert!(e.contains("truncated"), "{e}");
    }

    /// `Json::with` appends (first occurrence wins on lookup), so doc
    /// surgery in tests needs a genuine key replacement.
    fn replace(doc: &Json, key: &str, value: &Json) -> Json {
        let Json::Obj(fields) = doc else {
            panic!("doc is not an object")
        };
        Json::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    let v = if k == key { value } else { v };
                    (k.clone(), v.clone())
                })
                .collect(),
        )
    }

    #[test]
    fn meta_section_is_stamped_and_validated() {
        let doc = table1_doc(2);
        let meta = doc.get("meta").expect("meta section");
        assert_eq!(
            meta.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        let host = meta.get("host").and_then(Json::as_str).expect("host");
        assert!(host.contains(std::env::consts::OS), "{host}");
        assert_eq!(meta.get("threads").and_then(Json::as_u64), Some(2));
        // `git` is best-effort: when present it must look like a hash
        if let Some(git) = meta.get("git").and_then(Json::as_str) {
            assert!(
                git.len() >= 7 && git.chars().all(|c| c.is_ascii_hexdigit()),
                "{git}"
            );
        }
        // a report without meta still validates (older writers) ...
        let Json::Obj(fields) = &doc else {
            panic!("doc is not an object")
        };
        let without = Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "meta")
                .cloned()
                .collect(),
        );
        validate_v2(&without).unwrap();
        // ... but a malformed one is rejected
        let broken = replace(&doc, "meta", &Json::obj().with("version", Json::U64(3)));
        assert!(validate_v2(&broken).unwrap_err().contains("meta."));
        let no_threads = replace(
            &doc,
            "meta",
            &Json::obj()
                .with("version", Json::Str("0".into()))
                .with("host", Json::Str("h".into())),
        );
        assert!(validate_v2(&no_threads).unwrap_err().contains("threads"));
    }

    #[test]
    fn alloc_and_phase_bytes_sections_travel_together() {
        let doc = table1_doc(1);
        // splice in an alloc object without phase_bytes: must be rejected
        let memory = doc.get("memory").unwrap().clone().with(
            "alloc",
            Json::obj()
                .with("total_bytes", Json::U64(1))
                .with("total_calls", Json::U64(1))
                .with("peak_live_bytes", Json::U64(1)),
        );
        let broken = replace(&doc, "memory", &memory);
        let e = validate_v2(&broken).unwrap_err();
        assert!(e.contains("phase_bytes"), "{e}");
        // with the attribution present it validates again
        let phase = |n: u64| {
            Json::obj()
                .with("bytes", Json::U64(n))
                .with("allocs", Json::U64(n))
        };
        let fixed = replace(
            &doc,
            "memory",
            &memory.with(
                "phase_bytes",
                Json::obj()
                    .with("slices", phase(10))
                    .with("triclusters", phase(20))
                    .with("prune", phase(30)),
            ),
        );
        validate_v2(&fixed).unwrap();
    }

    #[test]
    fn v2_document_roundtrips_through_the_parser() {
        let doc = table1_doc(1);
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        validate_v2(&parsed).unwrap();
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let doc = table1_doc(1);
        // wrong schema string
        let wrong = Json::obj().with("schema", Json::Str("tricluster.report/v1".into()));
        assert!(validate_v2(&wrong).unwrap_err().contains("schema"));
        // drop a v2 section
        if let Json::Obj(fields) = &doc {
            let gutted = Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| k != "search_space")
                    .cloned()
                    .collect(),
            );
            assert!(validate_v2(&gutted).unwrap_err().contains("search_space"));
        } else {
            panic!("doc is not an object");
        }
    }

    #[test]
    fn explain_and_human_rendering_cover_the_profile() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .build()
            .unwrap();
        let result = mine_observed(&m, &p, &Recorder::new()).unwrap();
        let explain = explain_json(&result.report).render();
        for needle in ["search_space", "histograms", "memory", "nodes_expanded"] {
            assert!(explain.contains(needle), "missing {needle}");
        }
        let human = render_search_space_human(&result.report);
        assert!(human.contains("nodes expanded"));
        assert!(human.contains("dedup hits"));
    }
}
