//! TriCluster: mining coherent clusters in 3D microarray data.
//!
//! A from-scratch implementation of the SIGMOD 2005 algorithm by Zhao and
//! Zaki. TriCluster mines *maximal, arbitrarily positioned, possibly
//! overlapping* submatrices `X × Y × Z` of a `genes × samples × times`
//! expression matrix such that every 2×2 submatrix along any pair of
//! dimensions has an approximately constant expression-value ratio
//! (a *scaling* cluster; *shifting* clusters are mined through an
//! exponential transform, see [`shift`]).
//!
//! # Pipeline
//!
//! 1. [`rangegraph`] — per time slice, summarize all coherent gene behavior
//!    between sample-column pairs into a *range multigraph*: each maximal
//!    valid ratio range (found by [`range`]) becomes an edge carrying its
//!    gene-set.
//! 2. [`bicluster`] — depth-first constrained clique search over the sample
//!    columns of the range multigraph yields all maximal biclusters of each
//!    time slice.
//! 3. [`tricluster`] — the same set-enumeration over time points, using the
//!    per-slice biclusters as building blocks and checking inter-slice
//!    *temporal coherence*, yields the maximal triclusters.
//! 4. [`prune`] — optional merging/deletion of heavily overlapping clusters
//!    (thresholds `η`, `γ`).
//! 5. [`metrics`] — the paper's cluster-quality metrics.
//!
//! The high-level entry point is [`mine`] (or [`Miner`] for reuse across
//! runs):
//!
//! ```
//! use tricluster_core::{mine, Params};
//! use tricluster_matrix::Matrix3;
//!
//! // A tiny matrix where genes 0 and 1 scale together everywhere.
//! let mut m = Matrix3::zeros(3, 3, 2);
//! for t in 0..2 {
//!     for s in 0..3 {
//!         let base = (s + 1) as f64 * (t + 1) as f64;
//!         m.set(0, s, t, base);
//!         m.set(1, s, t, 2.0 * base);
//!         m.set(2, s, t, 7.0 + (s as f64) * (t as f64) + (s as f64 % 2.0) * 3.3);
//!     }
//! }
//! let params = Params::builder()
//!     .min_genes(2)
//!     .min_samples(3)
//!     .min_times(2)
//!     .epsilon(0.01)
//!     .build()
//!     .unwrap();
//! let result = mine(&m, &params).unwrap();
//! assert_eq!(result.triclusters.len(), 1);
//! assert_eq!(result.triclusters[0].genes.to_vec(), vec![0, 1]);
//! ```
//!
//! Fallible conditions (invalid parameters, infinite cells, a memory budget
//! smaller than the input) surface as a typed [`MineError`]; run budgets
//! ([`Params::max_candidates`], [`Params::deadline`], [`Params::max_memory`])
//! and isolated worker failures instead yield an `Ok` result flagged
//! [`truncated`](MiningResult::truncated) with a
//! [`TruncationReason`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicluster;
pub mod cancel;
pub mod classify;
pub mod cluster;
pub mod coherence;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod miner;
pub mod params;
pub mod prune;
pub mod range;
pub mod rangegraph;
pub mod report;
pub mod runreport;
pub mod shift;
pub mod span;
pub mod testdata;
pub mod tricluster;
pub mod validate;

pub use cancel::{resolve_truncation, CancelHandle, CancelToken, TruncationReason};
pub use classify::{classify, ClusterType, Spreads};
pub use cluster::{Bicluster, Tricluster};
pub use engine::{Dataset, Engine, Session, TenantCaps};
pub use error::MineError;
pub use fault::{RunCtrl, WorkerFailure, FAILPOINTS};
pub use metrics::{cluster_metrics, cluster_metrics_observed, Metrics};
pub use miner::{
    mine, mine_auto, mine_auto_observed, mine_observed, mine_observed_cancellable, FanoutDecision,
    FanoutLevel, Miner, MiningResult, Timings,
};
pub use params::{FanoutMode, MergeParams, Params, ParamsBuilder, ParamsError};
pub use shift::{mine_shifting, ShiftingCluster};

/// Re-export of the observability crate, so downstream users can name sinks
/// and reports without a separate dependency.
pub use tricluster_obs as obs;
