//! Temporal coherence between time slices (paper §4.3).
//!
//! When the tricluster search extends the time set by a new slice `t_b`,
//! the region `X × Y` must be coherent *across* the pair of slices. The
//! cluster definition constrains every 2×2 submatrix of the `X × Z` planes
//! (fixed sample) and `Y × Z` planes (fixed gene), which for one time pair
//! `(t_a, t_b)` means:
//!
//! * for every fixed sample `s`: the ratios `d[g][s][t_b] / d[g][s][t_a]`
//!   across genes `g ∈ X` agree within `ε_time`, and
//! * for every fixed gene `g`: the ratios across samples `s ∈ Y` agree
//!   within `ε_time`,
//!
//! each with a consistent sign. (Note this is *weaker* than requiring all
//! `|X|·|Y|` ratios to agree globally — the 2×2 conditions allow a global
//! spread of up to `(1+ε)² − 1 ≈ 2ε` across the region; implementing the
//! global check would silently drop valid clusters, which the brute-force
//! cross-check tests catch.)
//!
//! In the paper's example the ratios between `t1` and `t0` are `1.2` for
//! `C1` and `0.5` for `C2`/`C3`; a region without such coherent values is
//! pruned.

use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;

/// Checks whether the region `genes × samples` is coherent between time
/// slices `ta` and `tb` (see module docs for the exact condition).
///
/// Returns `false` when any involved cell is zero or non-finite.
pub fn slice_pair_coherent(
    m: &Matrix3,
    genes: &BitSet,
    samples: &[usize],
    ta: usize,
    tb: usize,
    eps: f64,
) -> bool {
    slice_pair_ratio(m, genes, samples, ta, tb, eps).is_some()
}

/// Like [`slice_pair_coherent`], but returns a representative ratio (the
/// signed geometric midpoint of the observed ratio interval) when the
/// region is coherent.
pub fn slice_pair_ratio(
    m: &Matrix3,
    genes: &BitSet,
    samples: &[usize],
    ta: usize,
    tb: usize,
    eps: f64,
) -> Option<f64> {
    let gene_list: Vec<usize> = genes.to_vec();
    if gene_list.is_empty() || samples.is_empty() {
        return None;
    }
    let ng = gene_list.len();
    let ns = samples.len();

    // ratio matrix, and global sign/extent tracking for the return value
    let mut ratios = vec![0.0f64; ng * ns];
    let mut sign = 0i8;
    let mut global_lo = f64::INFINITY;
    let mut global_hi = f64::NEG_INFINITY;
    for (gi, &g) in gene_list.iter().enumerate() {
        for (si, &s) in samples.iter().enumerate() {
            let va = m.get(g, s, ta);
            let vb = m.get(g, s, tb);
            if !va.is_finite() || !vb.is_finite() || va == 0.0 {
                return None;
            }
            let r = vb / va;
            if r == 0.0 || !r.is_finite() {
                return None;
            }
            let r_sign = if r > 0.0 { 1 } else { -1 };
            if sign == 0 {
                sign = r_sign;
            } else if sign != r_sign {
                // a sign flip always breaks some 2x2 along the grid
                return None;
            }
            let a = r.abs();
            ratios[gi * ns + si] = a;
            global_lo = global_lo.min(a);
            global_hi = global_hi.max(a);
        }
    }

    // per fixed sample: across genes
    for si in 0..ns {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for gi in 0..ng {
            let a = ratios[gi * ns + si];
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if hi / lo - 1.0 > eps {
            return None;
        }
    }
    // per fixed gene: across samples
    for row in ratios.chunks_exact(ns) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &a in row {
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if hi / lo - 1.0 > eps {
            return None;
        }
    }
    Some(f64::from(sign) * (global_lo * global_hi).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_table1;

    fn genes(which: &[usize]) -> BitSet {
        BitSet::from_indices(10, which.iter().copied())
    }

    /// Paper: "the ratios between t1 and t0 are 1.2 (for C1) and 0.5 (for
    /// C2 and C3)".
    #[test]
    fn paper_slice_ratios() {
        let m = paper_table1();
        let r1 = slice_pair_ratio(&m, &genes(&[1, 4, 8]), &[0, 1, 4, 6], 0, 1, 0.01).unwrap();
        assert!((r1 - 1.2).abs() < 1e-9, "C1 ratio {r1}");
        let r2 = slice_pair_ratio(&m, &genes(&[0, 2, 6, 9]), &[1, 4, 6], 0, 1, 0.01).unwrap();
        assert!((r2 - 0.5).abs() < 1e-9, "C2 ratio {r2}");
        let r3 = slice_pair_ratio(&m, &genes(&[0, 7, 9]), &[1, 2, 4, 5], 0, 1, 0.01).unwrap();
        assert!((r3 - 0.5).abs() < 1e-9, "C3 ratio {r3}");
    }

    /// A region straddling C1 (ratio 1.2) and C2 (ratio 0.5) is incoherent.
    #[test]
    fn mixed_region_incoherent() {
        let m = paper_table1();
        assert!(!slice_pair_coherent(
            &m,
            &genes(&[1, 4, 8, 0]),
            &[1, 4, 6],
            0,
            1,
            0.01
        ));
    }

    #[test]
    fn relaxed_epsilon_tolerates_drift() {
        let mut m = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                m.set(g, s, 0, 1.0 + (g + s) as f64);
                // t1 ≈ 2x t0 with 3% drift on one cell
                let f = if g == 1 && s == 1 { 2.06 } else { 2.0 };
                m.set(g, s, 1, (1.0 + (g + s) as f64) * f);
            }
        }
        let all = BitSet::full(2);
        assert!(!slice_pair_coherent(&m, &all, &[0, 1], 0, 1, 0.01));
        assert!(slice_pair_coherent(&m, &all, &[0, 1], 0, 1, 0.05));
    }

    /// The 2x2 conditions are per-plane: a checkerboard-free gradient where
    /// each row and column stays within ε but the global spread is ~2ε must
    /// pass (this is exactly what a single global window would wrongly
    /// reject).
    #[test]
    fn per_plane_check_allows_two_eps_global_spread() {
        let mut m = Matrix3::zeros(2, 2, 2);
        // slice ratios: [[1.00, 1.009], [1.009, 1.018]] — each row/col
        // within 0.9%, corners within 1.8%
        let r = [[1.0, 1.009], [1.009, 1.018]];
        for (g, row) in r.iter().enumerate() {
            for (s, &factor) in row.iter().enumerate() {
                let base = 1.0 + (g * 2 + s) as f64;
                m.set(g, s, 0, base);
                m.set(g, s, 1, base * factor);
            }
        }
        let all = BitSet::full(2);
        assert!(slice_pair_coherent(&m, &all, &[0, 1], 0, 1, 0.01));
        // but a fiber violation fails: bump one cell so its row spreads 2%
        m.set(1, 1, 1, m.get(1, 1, 0) * 1.03);
        assert!(!slice_pair_coherent(&m, &all, &[0, 1], 0, 1, 0.01));
    }

    #[test]
    fn sign_flip_is_incoherent() {
        let mut m = Matrix3::zeros(2, 1, 2);
        m.set(0, 0, 0, 1.0);
        m.set(0, 0, 1, 2.0);
        m.set(1, 0, 0, 1.0);
        m.set(1, 0, 1, -2.0);
        assert!(!slice_pair_coherent(&m, &BitSet::full(2), &[0], 0, 1, 0.5));
    }

    #[test]
    fn negative_but_consistent_ratio_is_coherent() {
        let mut m = Matrix3::zeros(2, 1, 2);
        m.set(0, 0, 0, 1.0);
        m.set(0, 0, 1, -2.0);
        m.set(1, 0, 0, 3.0);
        m.set(1, 0, 1, -6.0);
        let r = slice_pair_ratio(&m, &BitSet::full(2), &[0], 0, 1, 0.01).unwrap();
        assert!((r + 2.0).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn zero_cell_fails() {
        let mut m = Matrix3::zeros(1, 1, 2);
        m.set(0, 0, 0, 0.0);
        m.set(0, 0, 1, 2.0);
        assert!(!slice_pair_coherent(&m, &BitSet::full(1), &[0], 0, 1, 1.0));
    }

    #[test]
    fn empty_region_fails() {
        let m = Matrix3::zeros(2, 2, 2);
        assert!(!slice_pair_coherent(&m, &BitSet::new(2), &[], 0, 1, 1.0));
    }
}
