//! Full validity checking against the paper's cluster definition (§2).
//!
//! A tricluster `X × Y × Z` is *coherent* when, for every 2×2 submatrix
//! taken along any pair of dimensions, the row ratios agree within `ε`
//! (`max(r_i, r_j)/min(r_i, r_j) − 1 ≤ ε`), with the sign condition: when a
//! 2×2 mixes signs within a row, the sign pattern must be consistent across
//! rows.
//!
//! This module is the *reference oracle*: it checks the definition directly
//! (no range graph, no search shortcuts), so tests and the brute-force
//! baseline can cross-check the miner. By Lemma 1 (symmetry) it suffices to
//! check, for each plane, that the ratio between every **pair of columns**
//! is constant across rows — which is what [`plane_coherent`] does.

use crate::cluster::Tricluster;
use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;

/// Checks one 2D plane: for every pair of "columns" `(a, b)`, the ratios
/// `value(row, a) / value(row, b)` across all rows must share a sign and
/// satisfy `max|r|/min|r| − 1 ≤ eps`.
///
/// `rows` × `cols` index a value accessor `value(row, col)`.
pub fn plane_coherent(
    rows: &[usize],
    cols: &[usize],
    eps: f64,
    value: impl Fn(usize, usize) -> f64,
) -> bool {
    for (i, &a) in cols.iter().enumerate() {
        for &b in &cols[i + 1..] {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut sign = 0i8;
            let mut col_a_sign = 0i8;
            for &r in rows {
                let va = value(r, a);
                let vb = value(r, b);
                if !va.is_finite() || !vb.is_finite() || vb == 0.0 {
                    return false;
                }
                let ratio = va / vb;
                if ratio == 0.0 || !ratio.is_finite() {
                    return false;
                }
                let s = if ratio > 0.0 { 1 } else { -1 };
                if sign == 0 {
                    sign = s;
                } else if sign != s {
                    return false;
                }
                // Condition 2: a negative ratio (mixed signs within the row)
                // requires a consistent per-column sign pattern across rows,
                // so that e.g. -5/5 is never equated with 5/-5.
                if s < 0 {
                    let sa = if va > 0.0 { 1 } else { -1 };
                    if col_a_sign == 0 {
                        col_a_sign = sa;
                    } else if col_a_sign != sa {
                        return false;
                    }
                }
                let abs = ratio.abs();
                lo = lo.min(abs);
                hi = hi.max(abs);
            }
            if !rows.is_empty() && hi / lo - 1.0 > eps {
                return false;
            }
        }
    }
    true
}

/// Checks the full tricluster validity conditions 1–2 of §2 (ratio
/// coherence + signs) for the region `genes × samples × times`, using `eps`
/// within each gene×sample slice and `eps_time` for the planes involving
/// the time dimension.
pub fn is_coherent_region(
    m: &Matrix3,
    genes: &BitSet,
    samples: &[usize],
    times: &[usize],
    eps: f64,
    eps_time: f64,
) -> bool {
    let gene_list: Vec<usize> = genes.to_vec();
    if gene_list.is_empty() || samples.is_empty() || times.is_empty() {
        return false;
    }
    // X × Y planes (fixed t): columns are samples, rows are genes.
    for &t in times {
        if !plane_coherent(&gene_list, samples, eps, |g, s| m.get(g, s, t)) {
            return false;
        }
    }
    // X × Z planes (fixed s): columns are times, rows are genes.
    for &s in samples {
        if !plane_coherent(&gene_list, times, eps_time, |g, t| m.get(g, s, t)) {
            return false;
        }
    }
    // Y × Z planes (fixed g): columns are times, rows are samples.
    for &g in &gene_list {
        if !plane_coherent(samples, times, eps_time, |s, t| m.get(g, s, t)) {
            return false;
        }
    }
    true
}

/// Convenience wrapper checking a [`Tricluster`] (conditions 1–2 plus the
/// minimum-size condition 4; the `δ` range condition 3 is checked by the
/// miner's recording step and by [`deltas_ok`]).
pub fn is_valid_cluster(
    m: &Matrix3,
    c: &Tricluster,
    eps: f64,
    eps_time: f64,
    min_size: (usize, usize, usize),
) -> bool {
    let (mx, my, mz) = min_size;
    c.genes.count() >= mx
        && c.samples.len() >= my
        && c.times.len() >= mz
        && is_coherent_region(m, &c.genes, &c.samples, &c.times, eps, eps_time)
}

/// Checks the `δ` maximum-range thresholds (condition 3 of §2) for a
/// cluster region: `δ^x` bounds value spread within each `(s, t)` column,
/// `δ^y` within each `(g, t)` row, `δ^z` within each `(g, s)` time fiber.
pub fn deltas_ok(
    m: &Matrix3,
    c: &Tricluster,
    delta_gene: Option<f64>,
    delta_sample: Option<f64>,
    delta_time: Option<f64>,
) -> bool {
    let spread_ok = |values: &mut dyn Iterator<Item = f64>, bound: f64| -> bool {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo <= bound
    };
    if let Some(dx) = delta_gene {
        for &s in &c.samples {
            for &t in &c.times {
                if !spread_ok(&mut c.genes.iter().map(|g| m.get(g, s, t)), dx) {
                    return false;
                }
            }
        }
    }
    if let Some(dy) = delta_sample {
        for g in c.genes.iter() {
            for &t in &c.times {
                if !spread_ok(&mut c.samples.iter().map(|&s| m.get(g, s, t)), dy) {
                    return false;
                }
            }
        }
    }
    if let Some(dz) = delta_time {
        for g in c.genes.iter() {
            for &s in &c.samples {
                if !spread_ok(&mut c.times.iter().map(|&t| m.get(g, s, t)), dz) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{paper_table1, paper_table1_expected};

    fn tri(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(10, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    #[test]
    fn paper_clusters_are_valid() {
        let m = paper_table1();
        for (g, s, t) in paper_table1_expected() {
            let c = tri(&g, &s, &t);
            assert!(
                is_valid_cluster(&m, &c, 0.011, 0.011, (3, 3, 2)),
                "expected cluster invalid: {c:?}"
            );
        }
    }

    #[test]
    fn random_region_is_invalid() {
        let m = paper_table1();
        // g0 and g1 over C1's samples do not scale together
        let c = tri(&[0, 1], &[0, 1, 4, 6], &[0, 1]);
        assert!(!is_coherent_region(
            &m, &c.genes, &c.samples, &c.times, 0.01, 0.01
        ));
    }

    #[test]
    fn min_size_enforced() {
        let m = paper_table1();
        let c = tri(&[1, 4, 8], &[0, 1, 4, 6], &[0, 1]);
        assert!(is_valid_cluster(&m, &c, 0.01, 0.01, (3, 4, 2)));
        assert!(!is_valid_cluster(&m, &c, 0.01, 0.01, (4, 4, 2)));
        assert!(!is_valid_cluster(&m, &c, 0.01, 0.01, (3, 5, 2)));
        assert!(!is_valid_cluster(&m, &c, 0.01, 0.01, (3, 4, 3)));
    }

    #[test]
    fn plane_coherent_scaling_rows() {
        // rows scale: row r values = (r+1) * [1, 2, 4]
        let value = |r: usize, c: usize| (r + 1) as f64 * [1.0, 2.0, 4.0][c];
        assert!(plane_coherent(&[0, 1, 2], &[0, 1, 2], 1e-9, value));
    }

    #[test]
    fn plane_coherent_rejects_eps_violation() {
        let value = |r: usize, c: usize| {
            if (r, c) == (1, 1) {
                4.2 // 5% off the scaling pattern (would be 4.0)
            } else {
                (r + 1) as f64 * [1.0, 2.0][c]
            }
        };
        assert!(!plane_coherent(&[0, 1], &[0, 1], 0.01, value));
        assert!(plane_coherent(&[0, 1], &[0, 1], 0.06, value));
    }

    #[test]
    fn plane_coherent_sign_rules() {
        // Paper footnote 1: the ratio -5/5 must NOT be treated as equal to
        // 5/-5. Row 0 = (5, -5) and row 1 = (-5, 5) both have ratio -1 but
        // opposite column sign patterns; condition 2 rejects the region.
        let m = {
            let mut m = Matrix3::zeros(2, 2, 1);
            m.set(0, 0, 0, 5.0);
            m.set(0, 1, 0, -5.0);
            m.set(1, 0, 0, -5.0);
            m.set(1, 1, 0, 5.0);
            m
        };
        assert!(!is_coherent_region(
            &m,
            &BitSet::full(2),
            &[0, 1],
            &[0],
            0.01,
            0.01
        ));
        // Matching sign patterns with a negative ratio are fine:
        let m2 = {
            let mut m = Matrix3::zeros(2, 2, 1);
            m.set(0, 0, 0, 5.0);
            m.set(0, 1, 0, -5.0);
            m.set(1, 0, 0, 10.0);
            m.set(1, 1, 0, -10.0);
            m
        };
        assert!(is_coherent_region(
            &m2,
            &BitSet::full(2),
            &[0, 1],
            &[0],
            0.01,
            0.01
        ));
    }

    #[test]
    fn deltas_ok_checks_each_dimension() {
        // exactly-representable steps so spreads compare without FP fuzz
        let mut m = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                for t in 0..2 {
                    m.set(g, s, t, g as f64 * 16.0 + s as f64 * 2.0 + t as f64 * 0.25);
                }
            }
        }
        let c = tri(&[0, 1], &[0, 1], &[0, 1]);
        assert!(deltas_ok(&m, &c, None, None, None), "unconstrained passes");
        assert!(deltas_ok(&m, &c, Some(16.0), Some(2.0), Some(0.25)));
        assert!(!deltas_ok(&m, &c, Some(15.9), None, None));
        assert!(!deltas_ok(&m, &c, None, Some(1.9), None));
        assert!(!deltas_ok(&m, &c, None, None, Some(0.24)));
    }

    #[test]
    fn empty_region_is_invalid() {
        let m = paper_table1();
        assert!(!is_coherent_region(
            &m,
            &BitSet::new(10),
            &[],
            &[],
            0.01,
            0.01
        ));
    }

    #[test]
    fn zero_value_in_region_is_invalid() {
        let mut m = Matrix3::zeros(2, 2, 1);
        m.set(0, 0, 0, 1.0);
        m.set(0, 1, 0, 2.0);
        m.set(1, 0, 0, 1.0);
        // (1,1,0) stays 0.0
        assert!(!is_coherent_region(
            &m,
            &BitSet::full(2),
            &[0, 1],
            &[0],
            0.5,
            0.5
        ));
    }
}
