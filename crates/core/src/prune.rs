//! Merging and pruning of overlapping clusters (paper §4.4, Figure 6).
//!
//! Real data is noisy and users rarely know the perfect parameters, so many
//! mined clusters can overlap heavily. Three rules clean them up, driven by
//! user thresholds `η` (delete) and `γ` (merge):
//!
//! 1. **Delete (pairwise)** — if `|L_A| > |L_B|` and
//!    `|L_{B−A}| / |L_B| < η`, the smaller cluster `B` adds only a sliver
//!    beyond `A`: delete `B`.
//! 2. **Delete (multi-cover)** — if a set of other clusters `{B_i}` covers
//!    `A` so well that `|L_A − ∪_i L_{B_i}| / |L_A| < η`, delete `A`.
//! 3. **Merge** — if the bounding cluster of `A` and `B` adds few new cells,
//!    `|L_{(A+B)−A−B}| / |L_{A+B}| < γ`, replace both with the bounding
//!    cluster `(X_A∪X_B) × (Y_A∪Y_B) × (Z_A∪Z_B)`.
//!
//! Order of application: merges run to a fixpoint first (they can create
//! larger clusters that subsume others), then pairwise deletions, then
//! multi-cover deletions. Clusters are processed largest-span-first for
//! determinism.

use crate::cluster::Tricluster;
use crate::params::MergeParams;
use crate::span;
use tricluster_obs::{emit, names, timeline, Event, EventSink, Histogram, NullSink};

/// Statistics of one [`merge_and_prune`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Number of pairwise merges performed (rule 3).
    pub merged: usize,
    /// Clusters deleted by the pairwise rule 1.
    pub deleted_pairwise: usize,
    /// Clusters deleted by the multi-cover rule 2.
    pub deleted_multicover: usize,
}

/// Applies the three overlap rules and returns the surviving clusters along
/// with statistics. The input order does not affect the result beyond ties
/// broken by span size.
pub fn merge_and_prune(
    clusters: Vec<Tricluster>,
    params: &MergeParams,
) -> (Vec<Tricluster>, PruneStats) {
    merge_and_prune_observed(clusters, params, &NullSink)
}

/// Like [`merge_and_prune`], but also publishes decision counters and emits
/// one trace event per merge/delete decision ("prune.merge",
/// "prune.delete.pairwise", "prune.delete.multicover") with the spans and
/// fractions that drove it.
pub fn merge_and_prune_observed(
    clusters: Vec<Tricluster>,
    params: &MergeParams,
    sink: &dyn EventSink,
) -> (Vec<Tricluster>, PruneStats) {
    let mut stats = PruneStats::default();
    let mut clusters = clusters;
    // Distribution of how close compared pairs were to merging; only
    // collected when a sink asks for histograms.
    let mut extra_pct: Option<Histogram> = sink.wants_histograms().then(Histogram::default);

    // --- rule 3: merge to fixpoint ---
    let tl_merge = timeline::span(names::T_PR_MERGE);
    loop {
        let mut merged_any = false;
        'outer: for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let a = &clusters[i];
                let b = &clusters[j];
                let total = span::bounding_size(a, b);
                if total == 0 {
                    continue;
                }
                let extra = span::bounding_extra_size(a, b);
                if let Some(h) = extra_pct.as_mut() {
                    h.record((extra * 100 / total) as u64);
                }
                if (extra as f64) / (total as f64) < params.gamma {
                    emit(sink, || {
                        Event::new("prune.merge")
                            .field("span_a", a.span_size())
                            .field("span_b", b.span_size())
                            .field("bounding", total)
                            .field("extra_frac", extra as f64 / total as f64)
                    });
                    let merged = a.bounding(b);
                    clusters.swap_remove(j);
                    clusters[i] = merged;
                    stats.merged += 1;
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            break;
        }
    }
    // merging may have produced nested clusters; keep only maximal ones
    clusters = keep_maximal(clusters);
    drop(tl_merge);
    let _tl_delete = timeline::span(names::T_PR_DELETE);

    // largest-span-first for deterministic deletion order
    clusters.sort_by(|a, b| {
        b.span_size()
            .cmp(&a.span_size())
            .then_with(|| a.genes.to_vec().cmp(&b.genes.to_vec()))
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });

    // --- rule 1: pairwise deletion of slivers ---
    let mut alive = vec![true; clusters.len()];
    for i in 0..clusters.len() {
        if !alive[i] {
            continue;
        }
        for j in 0..clusters.len() {
            if i == j || !alive[j] || !alive[i] {
                continue;
            }
            let a = &clusters[i];
            let b = &clusters[j];
            if a.span_size() > b.span_size() {
                let frac = span::difference_size(b, a) as f64 / b.span_size() as f64;
                if frac < params.eta {
                    emit(sink, || {
                        Event::new("prune.delete.pairwise")
                            .field("span_kept", a.span_size())
                            .field("span_deleted", b.span_size())
                            .field("outside_frac", frac)
                    });
                    alive[j] = false;
                    stats.deleted_pairwise += 1;
                }
            }
        }
    }

    // --- rule 2: multi-cover deletion ---
    // Smallest clusters are tested first so that a cluster mostly covered by
    // its peers goes away before it can "cover" others.
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..clusters.len()).filter(|&i| alive[i]).collect();
        idx.sort_by_key(|&i| clusters[i].span_size());
        idx
    };
    for &i in &order {
        if !alive[i] {
            continue;
        }
        let others: Vec<&Tricluster> = (0..clusters.len())
            .filter(|&j| j != i && alive[j])
            .map(|j| &clusters[j])
            .collect();
        if others.is_empty() {
            continue;
        }
        let uncovered = span::uncovered_size(&clusters[i], &others);
        let frac = uncovered as f64 / clusters[i].span_size() as f64;
        if frac < params.eta {
            emit(sink, || {
                Event::new("prune.delete.multicover")
                    .field("span_deleted", clusters[i].span_size())
                    .field("covered_by", others.len())
                    .field("uncovered_frac", frac)
            });
            alive[i] = false;
            stats.deleted_multicover += 1;
        }
    }

    sink.counter(names::PR_MERGED, stats.merged as u64);
    sink.counter(names::PR_DELETED_PAIRWISE, stats.deleted_pairwise as u64);
    sink.counter(
        names::PR_DELETED_MULTICOVER,
        stats.deleted_multicover as u64,
    );
    if let Some(h) = &extra_pct {
        sink.histogram(names::H_PR_BOUNDING_EXTRA_PCT, h);
    }

    let survivors = clusters
        .into_iter()
        .zip(alive)
        .filter_map(|(c, keep)| keep.then_some(c))
        .collect();
    (survivors, stats)
}

fn keep_maximal(clusters: Vec<Tricluster>) -> Vec<Tricluster> {
    let mut out: Vec<Tricluster> = Vec::with_capacity(clusters.len());
    for c in clusters {
        crate::tricluster::insert_maximal_tricluster(&mut out, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_bitset::BitSet;

    fn mk(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(30, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    fn eta_gamma(eta: f64, gamma: f64) -> MergeParams {
        MergeParams { eta, gamma }
    }

    /// Figure 6(a): B barely pokes out of A -> delete B.
    #[test]
    fn rule1_deletes_sliver() {
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[0, 1, 2, 3], &[0, 1]);
        // B: 10 of its 12 cells inside A -> |B−A|/|B| = 2/12 ≈ 0.17 < 0.2
        let b = mk(&[0, 1, 2, 3, 4, 10], &[0, 1], &[0]);
        assert_eq!(span::difference_size(&b, &a), 2);
        let (out, stats) = merge_and_prune(vec![a.clone(), b], &eta_gamma(0.2, 0.0));
        assert_eq!(out, vec![a]);
        assert_eq!(stats.deleted_pairwise, 1);
        assert_eq!(stats.merged, 0);
    }

    #[test]
    fn rule1_keeps_substantial_overlap() {
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[0, 1, 2, 3], &[0, 1]);
        let b = mk(&[0, 1, 10, 11], &[0, 1], &[0]); // half outside A
        let (out, stats) = merge_and_prune(vec![a, b], &eta_gamma(0.2, 0.0));
        assert_eq!(out.len(), 2);
        assert_eq!(stats, PruneStats::default());
    }

    /// Figure 6(b): A mostly covered by several B_i -> delete A.
    #[test]
    fn rule2_deletes_multicovered() {
        // A = 10 genes x 2 samples x 1 time = 20 cells
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[0, 1], &[0]);
        // two bigger clusters covering 9 of A's 10 genes (18 of 20 cells),
        // each extended along times so rule 1 doesn't fire first
        let b1 = mk(&[0, 1, 2, 3, 4], &[0, 1], &[0, 1, 2]);
        let b2 = mk(&[5, 6, 7, 8], &[0, 1], &[0, 1, 2]);
        let (out, stats) = merge_and_prune(
            vec![a.clone(), b1.clone(), b2.clone()],
            &eta_gamma(0.15, 0.0),
        );
        assert_eq!(stats.deleted_multicover, 1, "{out:?}");
        assert!(out.contains(&b1) && out.contains(&b2));
        assert!(!out.contains(&a));
    }

    /// Figure 6(c): two clusters whose bounding box adds few cells merge.
    #[test]
    fn rule3_merges_near_boxes() {
        // A and B differ by one gene; bounding box adds that gene's cells
        // for the samples/times of the other -> small extra fraction.
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 8], &[0, 1, 2], &[0, 1]);
        let b = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 9], &[0, 1, 2], &[0, 1]);
        // bounding: 10 genes -> 60 cells; A=54, B=54, inter=48 -> extra=0
        let (out, stats) = merge_and_prune(vec![a, b], &eta_gamma(0.0, 0.05));
        assert_eq!(stats.merged, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].genes.count(), 10);
    }

    #[test]
    fn rule3_does_not_merge_distant_boxes() {
        let a = mk(&[0, 1], &[0], &[0]);
        let b = mk(&[10, 11], &[5], &[1]);
        let (out, stats) = merge_and_prune(vec![a, b], &eta_gamma(0.0, 0.3));
        assert_eq!(out.len(), 2);
        assert_eq!(stats.merged, 0);
    }

    #[test]
    fn merge_chains_to_fixpoint() {
        // three near-identical boxes merge into one
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7], &[0, 1], &[0]);
        let b = mk(&[0, 1, 2, 3, 4, 5, 6, 8], &[0, 1], &[0]);
        let c = mk(&[0, 1, 2, 3, 4, 5, 6, 9], &[0, 1], &[0]);
        let (out, stats) = merge_and_prune(vec![a, b, c], &eta_gamma(0.0, 0.25));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(stats.merged, 2);
        assert_eq!(out[0].genes.count(), 10);
    }

    #[test]
    fn zero_thresholds_are_noop() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0]);
        let b = mk(&[0, 1], &[0, 1], &[0, 1]);
        let (out, stats) = merge_and_prune(vec![a, b], &eta_gamma(0.0, 0.0));
        assert_eq!(out.len(), 2);
        assert_eq!(stats, PruneStats::default());
    }

    #[test]
    fn empty_input() {
        let (out, stats) = merge_and_prune(Vec::new(), &MergeParams::default());
        assert!(out.is_empty());
        assert_eq!(stats, PruneStats::default());
    }

    #[test]
    fn observed_emits_decision_events() {
        let rec = tricluster_obs::Recorder::new();
        let a = mk(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[0, 1, 2, 3], &[0, 1]);
        let b = mk(&[0, 1, 2, 3, 4, 10], &[0, 1], &[0]);
        let (_, stats) = merge_and_prune_observed(vec![a, b], &eta_gamma(0.2, 0.0), &rec);
        assert_eq!(stats.deleted_pairwise, 1);
        let events = rec.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "prune.delete.pairwise");
        let report = rec.snapshot();
        assert_eq!(report.counter("prune.deleted.pairwise"), 1);
        assert_eq!(report.counter("prune.merged"), 0);
    }

    #[test]
    fn merge_pass_records_pair_closeness_histogram() {
        let rec = tricluster_obs::Recorder::new();
        let a = mk(&[0, 1, 2], &[0, 1], &[0]);
        let b = mk(&[10, 11], &[5], &[1]);
        let (_, _) = merge_and_prune_observed(vec![a, b], &eta_gamma(0.0, 0.3), &rec);
        let report = rec.snapshot();
        let h = report
            .histogram(names::H_PR_BOUNDING_EXTRA_PCT)
            .expect("one compared pair");
        assert_eq!(h.count(), 1);
        assert!(h.max() > 50, "distant boxes are mostly extra cells");
    }

    #[test]
    fn identical_twins_merge_or_delete() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0]);
        let (out, _) = merge_and_prune(vec![a.clone(), a.clone()], &eta_gamma(0.1, 0.1));
        assert_eq!(out, vec![a]);
    }
}
