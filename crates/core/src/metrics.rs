//! Cluster-quality metrics (paper §5.2).
//!
//! For a set of mined clusters `C`:
//!
//! 1. **Cluster #** — `|C|`.
//! 2. **Element_Sum** — `Σ_C |L_C|`, the sum of spans.
//! 3. **Coverage** — `|L_{∪C}|`, distinct cells covered by any cluster.
//! 4. **Overlap** — `(Element_Sum − Coverage) / Coverage`.
//! 5. **Fluctuation** — the average variance across a given dimension: for
//!    each cluster and each 1-D fiber along that dimension (fixing the
//!    other two coordinates), the population variance of the fiber's
//!    values; averaged over fibers, then over clusters.

use crate::cluster::Tricluster;
use tricluster_matrix::Matrix3;
use tricluster_obs::{names, EventSink, NullSink, SpanTimer};

/// The paper's five quality metrics (fluctuation reported per dimension).
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Number of clusters.
    pub cluster_count: usize,
    /// Sum of cluster spans (cells counted with multiplicity).
    pub element_sum: usize,
    /// Distinct cells covered by at least one cluster.
    pub coverage: usize,
    /// `(element_sum − coverage) / coverage`; `0` when coverage is 0.
    pub overlap: f64,
    /// Average variance along the gene dimension (columns of fixed
    /// sample/time).
    pub fluctuation_gene: f64,
    /// Average variance along the sample dimension.
    pub fluctuation_sample: f64,
    /// Average variance along the time dimension.
    pub fluctuation_time: f64,
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Clusters#    {}", self.cluster_count)?;
        writeln!(f, "Elements#    {}", self.element_sum)?;
        writeln!(f, "Coverage     {}", self.coverage)?;
        writeln!(f, "Overlap      {:.2}%", self.overlap * 100.0)?;
        write!(
            f,
            "Fluctuation  T:{:.2}, S:{:.2}, G:{:.2}",
            self.fluctuation_time, self.fluctuation_sample, self.fluctuation_gene
        )
    }
}

/// Computes the metrics of `clusters` over the matrix they were mined from.
pub fn cluster_metrics(m: &Matrix3, clusters: &[Tricluster]) -> Metrics {
    cluster_metrics_observed(m, clusters, &NullSink)
}

/// Like [`cluster_metrics`], but times the computation as a
/// `phase.metrics` span and publishes cell counters to `sink`.
pub fn cluster_metrics_observed(
    m: &Matrix3,
    clusters: &[Tricluster],
    sink: &dyn EventSink,
) -> Metrics {
    let _span = SpanTimer::start(sink, names::SPAN_METRICS);
    let cluster_count = clusters.len();
    let element_sum: usize = clusters.iter().map(Tricluster::span_size).sum();

    // Coverage = distinct cells. Cells are packed into their linear matrix
    // index and sorted + deduped; for the dense cell lists clusters produce
    // this beats hashing each (g, s, t) triple (no per-cell hashing, one
    // cache-friendly sort) and is deterministic.
    let stride_t = m.n_times() as u64;
    let stride_s = m.n_samples() as u64 * stride_t;
    let mut covered: Vec<u64> = Vec::with_capacity(element_sum);
    for c in clusters {
        for (g, s, t) in c.cells() {
            covered.push(g as u64 * stride_s + s as u64 * stride_t + t as u64);
        }
    }
    covered.sort_unstable();
    covered.dedup();
    let coverage = covered.len();
    sink.counter(names::MX_CELLS, element_sum as u64);
    sink.counter(names::MX_COVERED, coverage as u64);
    let overlap = if coverage == 0 {
        0.0
    } else {
        (element_sum - coverage) as f64 / coverage as f64
    };

    let fluctuation_gene = average_fiber_variance(m, clusters, Fiber::Gene);
    let fluctuation_sample = average_fiber_variance(m, clusters, Fiber::Sample);
    let fluctuation_time = average_fiber_variance(m, clusters, Fiber::Time);

    Metrics {
        cluster_count,
        element_sum,
        coverage,
        overlap,
        fluctuation_gene,
        fluctuation_sample,
        fluctuation_time,
    }
}

#[derive(Clone, Copy)]
enum Fiber {
    Gene,
    Sample,
    Time,
}

/// Population variance of an iterator of values; `None` for empty input.
fn variance(values: impl Iterator<Item = f64>) -> Option<f64> {
    let vals: Vec<f64> = values.collect();
    if vals.is_empty() {
        return None;
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    Some(vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
}

fn average_fiber_variance(m: &Matrix3, clusters: &[Tricluster], dim: Fiber) -> f64 {
    if clusters.is_empty() {
        return 0.0;
    }
    let mut per_cluster = Vec::with_capacity(clusters.len());
    for c in clusters {
        let mut fiber_vars: Vec<f64> = Vec::new();
        match dim {
            Fiber::Gene => {
                for &s in &c.samples {
                    for &t in &c.times {
                        if let Some(v) = variance(c.genes.iter().map(|g| m.get(g, s, t))) {
                            fiber_vars.push(v);
                        }
                    }
                }
            }
            Fiber::Sample => {
                for g in c.genes.iter() {
                    for &t in &c.times {
                        if let Some(v) = variance(c.samples.iter().map(|&s| m.get(g, s, t))) {
                            fiber_vars.push(v);
                        }
                    }
                }
            }
            Fiber::Time => {
                for g in c.genes.iter() {
                    for &s in &c.samples {
                        if let Some(v) = variance(c.times.iter().map(|&t| m.get(g, s, t))) {
                            fiber_vars.push(v);
                        }
                    }
                }
            }
        }
        if !fiber_vars.is_empty() {
            per_cluster.push(fiber_vars.iter().sum::<f64>() / fiber_vars.len() as f64);
        }
    }
    if per_cluster.is_empty() {
        0.0
    } else {
        per_cluster.iter().sum::<f64>() / per_cluster.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_bitset::BitSet;

    fn mk(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(10, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    fn matrix() -> Matrix3 {
        let mut m = Matrix3::zeros(10, 4, 3);
        for g in 0..10 {
            for s in 0..4 {
                for t in 0..3 {
                    m.set(g, s, t, (g + 1) as f64 * (s + 1) as f64 * (t + 1) as f64);
                }
            }
        }
        m
    }

    #[test]
    fn empty_cluster_set() {
        let m = matrix();
        let met = cluster_metrics(&m, &[]);
        assert_eq!(met.cluster_count, 0);
        assert_eq!(met.element_sum, 0);
        assert_eq!(met.coverage, 0);
        assert_eq!(met.overlap, 0.0);
        assert_eq!(met.fluctuation_gene, 0.0);
    }

    #[test]
    fn disjoint_clusters_have_zero_overlap() {
        let m = matrix();
        let a = mk(&[0, 1], &[0, 1], &[0]);
        let b = mk(&[2, 3], &[2, 3], &[1]);
        let met = cluster_metrics(&m, &[a, b]);
        assert_eq!(met.cluster_count, 2);
        assert_eq!(met.element_sum, 8);
        assert_eq!(met.coverage, 8);
        assert_eq!(met.overlap, 0.0);
    }

    #[test]
    fn overlapping_clusters_counted_once_in_coverage() {
        let m = matrix();
        let a = mk(&[0, 1], &[0, 1], &[0]);
        let b = mk(&[0, 1], &[0, 1], &[0, 1]); // contains a
        let met = cluster_metrics(&m, &[a, b]);
        assert_eq!(met.element_sum, 4 + 8);
        assert_eq!(met.coverage, 8);
        assert!((met.overlap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fluctuation_zero_for_constant_fibers() {
        let mut m = Matrix3::zeros(4, 2, 2);
        m.map_in_place(|_| 5.0);
        let c = mk(&[0, 1, 2], &[0, 1], &[0, 1]);
        let met = cluster_metrics(&m, &[c]);
        assert_eq!(met.fluctuation_gene, 0.0);
        assert_eq!(met.fluctuation_sample, 0.0);
        assert_eq!(met.fluctuation_time, 0.0);
    }

    #[test]
    fn fluctuation_matches_hand_computation() {
        // matrix values g*(s+1): gene fiber at fixed (s,t) over genes {0,1}
        // with s=0: values 0,1 -> var 0.25; s=1: values 0,2 -> var 1.0
        let mut m = Matrix3::zeros(2, 2, 1);
        for g in 0..2 {
            for s in 0..2 {
                m.set(g, s, 0, (g * (s + 1)) as f64);
            }
        }
        let c = mk(&[0, 1], &[0, 1], &[0]);
        let met = cluster_metrics(&m, &[c]);
        assert!((met.fluctuation_gene - (0.25 + 1.0) / 2.0).abs() < 1e-12);
        // sample fibers: gene 0: (0,0) var 0; gene 1: (1,2) var 0.25
        assert!((met.fluctuation_sample - 0.125).abs() < 1e-12);
        // single time point: variance of a singleton fiber is 0
        assert_eq!(met.fluctuation_time, 0.0);
    }

    #[test]
    fn observed_publishes_cell_counters_and_span() {
        let m = matrix();
        let rec = tricluster_obs::Recorder::new();
        let a = mk(&[0, 1], &[0, 1], &[0]);
        let b = mk(&[0, 1], &[0, 1], &[0, 1]);
        let met = cluster_metrics_observed(&m, &[a, b], &rec);
        let report = rec.snapshot();
        assert_eq!(report.counter("metrics.cells"), met.element_sum as u64);
        assert_eq!(
            report.counter("metrics.cells_distinct"),
            met.coverage as u64
        );
        assert_eq!(report.spans["phase.metrics"].count, 1);
    }

    #[test]
    fn display_contains_all_rows() {
        let m = matrix();
        let met = cluster_metrics(&m, &[mk(&[0, 1], &[0], &[0, 1])]);
        let s = met.to_string();
        for needle in [
            "Clusters#",
            "Elements#",
            "Coverage",
            "Overlap",
            "Fluctuation",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
