//! High-level mining pipeline (paper §4).
//!
//! [`mine`] wires the four phases together: per-slice range multigraphs,
//! per-slice bicluster mining (fanned out across threads — slices are
//! independent), tricluster enumeration, and the optional merge/prune pass.
//! [`mine_auto`] additionally applies the canonical transposition (largest
//! dimension mined as genes, per the symmetry Lemma 1) and maps the results
//! back to the caller's coordinates.

use crate::bicluster::{mine_biclusters_ctrl, BiclusterStats};
use crate::cancel::TruncationReason;
use crate::cluster::{Bicluster, Tricluster};
use crate::error::MineError;
use crate::fault::{fail_point, fail_point_panic, isolate, panic_message, RunCtrl, WorkerFailure};
use crate::metrics::{cluster_metrics, Metrics};
use crate::params::{FanoutMode, Params};
use crate::prune::{merge_and_prune_observed, PruneStats};
use crate::range::RatioRange;
use crate::rangegraph::{build_range_graph_ctrl, RangeGraph, RangeGraphStats};
use crate::tricluster::mine_triclusters_ctrl;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use tricluster_bitset::BitSet;
use tricluster_matrix::{Axis, Matrix3};
use tricluster_obs::progress::{Phase, Progress};
use tricluster_obs::{
    alloc, emit, names, timeline, Event, EventSink, Histogram, NullSink, RunReport,
};

/// Granularity one phase actually fanned out at (see
/// [`FanoutMode`] for how the choice is made).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanoutLevel {
    /// Whole time slices striped across workers.
    Slice,
    /// `(slice, column-pair)` work items within each slice.
    Pair,
    /// Top-level sample-seed DFS branches within each slice.
    Branch,
}

impl FanoutLevel {
    /// Stable lowercase name for reports and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            FanoutLevel::Slice => "slice",
            FanoutLevel::Pair => "pair",
            FanoutLevel::Branch => "branch",
        }
    }
}

/// The schedule the miner chose for this run. Unlike everything in the
/// report's deterministic sections this depends on the thread count, so it
/// is exposed here (and as a trace event) rather than as a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutDecision {
    /// Fan-out level of range-graph construction.
    pub range_graph: FanoutLevel,
    /// Fan-out level of the bicluster DFS.
    pub bicluster: FanoutLevel,
    /// Worker threads the run was scheduled onto.
    pub threads: usize,
}

/// Everything produced by one mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The final maximal triclusters (after merge/prune when enabled).
    pub triclusters: Vec<Tricluster>,
    /// The biclusters mined from each time slice (before the tricluster
    /// phase), for diagnostics and for the paper's per-slice analyses.
    pub per_time_biclusters: Vec<Vec<Bicluster>>,
    /// Total ranges (multigraph edges) per time slice.
    pub ranges_per_time: Vec<usize>,
    /// Statistics of the merge/prune pass (zeros when disabled).
    pub prune_stats: PruneStats,
    /// `true` when the run was cut short — by a budget
    /// ([`Params::max_candidates`], [`Params::deadline`],
    /// [`Params::max_memory`]) or by an isolated worker failure. The
    /// clusters are sound but possibly incomplete (a subset of what the
    /// unconstrained run mines).
    pub truncated: bool,
    /// Why the run was cut short; `None` for a complete run. When several
    /// causes fired, the highest-precedence one is reported:
    /// deadline > memory > candidate budget > worker failure.
    pub truncation: Option<TruncationReason>,
    /// Isolated work units that panicked, sorted by (phase, unit, message).
    /// Their results are missing from the run; everything else merged
    /// deterministically.
    pub worker_failures: Vec<WorkerFailure>,
    /// Phase timings.
    pub timings: Timings,
    /// Structured run report: phase spans plus the counter taxonomy of
    /// [`tricluster_obs::names`]. Counter values are deterministic for a
    /// given input/parameters, independent of thread count.
    pub report: RunReport,
    /// Which fan-out granularity each per-slice phase ran at. Purely a
    /// scheduling artifact: it varies with `threads`/[`Params::fanout`]
    /// while clusters and report counters do not.
    pub fanout: FanoutDecision,
}

/// Duration of each pipeline phase.
///
/// The per-slice phases are reported in two views: `range_graphs` and
/// `biclusters` are *summed CPU time* measured inside each worker (they can
/// exceed wall-clock when slices run in parallel), while `slices_wall` is
/// the wall-clock of the whole fan-out. Under intra-slice fan-out the
/// slices run sequentially and parallelize internally, so those two sums
/// are per-slice wall times and stay at or below `slices_wall`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Range multigraph construction, CPU time summed over slices.
    pub range_graphs: Duration,
    /// Bicluster mining, CPU time summed over slices.
    pub biclusters: Duration,
    /// Wall-clock of the parallel per-slice fan-out (phases 1+2 together).
    pub slices_wall: Duration,
    /// Tricluster enumeration.
    pub triclusters: Duration,
    /// Merge/prune pass.
    pub prune: Duration,
}

impl Timings {
    /// Total wall-clock of the pipeline.
    pub fn total(&self) -> Duration {
        self.slices_wall + self.triclusters + self.prune
    }

    /// Total CPU time attributed to the phases (the per-slice phases summed
    /// across workers; exceeds [`Timings::total`] under parallel speed-up).
    pub fn summed_cpu(&self) -> Duration {
        self.range_graphs + self.biclusters + self.triclusters + self.prune
    }
}

impl MiningResult {
    /// Computes the paper's quality metrics for the final clusters.
    pub fn metrics(&self, m: &Matrix3) -> Metrics {
        cluster_metrics(m, &self.triclusters)
    }
}

/// Reusable mining facade. Currently stateless; exists so callers can hold
/// a configured miner and to leave room for cross-run caching.
#[derive(Debug, Clone)]
pub struct Miner {
    params: Params,
}

impl Miner {
    /// Creates a miner with the given parameters.
    pub fn new(params: Params) -> Self {
        Miner { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs the full pipeline on `m`.
    pub fn mine(&self, m: &Matrix3) -> Result<MiningResult, MineError> {
        mine(m, &self.params)
    }
}

/// Internal sink wrapper: accumulates counters and spans into the run
/// report while forwarding every signal (including trace events, which it
/// does not buffer) to the caller's sink. Ensures each signal reaches the
/// caller's sink exactly once.
struct ReportSink<'a> {
    report: std::sync::Mutex<RunReport>,
    inner: &'a dyn EventSink,
}

impl<'a> ReportSink<'a> {
    fn new(inner: &'a dyn EventSink) -> Self {
        ReportSink {
            report: std::sync::Mutex::new(RunReport::new()),
            inner,
        }
    }

    fn into_report(self) -> RunReport {
        self.report.into_inner().unwrap()
    }
}

impl EventSink for ReportSink<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
    fn counter(&self, name: &'static str, delta: u64) {
        self.report.lock().unwrap().add_counter(name, delta);
        self.inner.counter(name, delta);
    }
    fn span(&self, name: &'static str, elapsed: Duration) {
        self.report.lock().unwrap().add_span(name, elapsed);
        self.inner.span(name, elapsed);
    }
    fn event(&self, event: Event) {
        self.inner.event(event);
    }
    fn wants_histograms(&self) -> bool {
        self.inner.wants_histograms()
    }
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        self.report.lock().unwrap().add_histogram(name, hist);
        self.inner.histogram(name, hist);
    }
    fn timeline(&self) -> Option<&tricluster_obs::timeline::Timeline> {
        self.inner.timeline()
    }
    fn progress(&self) -> Option<std::sync::Arc<Progress>> {
        self.inner.progress()
    }
}

/// Heap bytes of a bitset's block storage.
fn bitset_bytes(bits: &BitSet) -> u64 {
    std::mem::size_of_val(bits.as_blocks()) as u64
}

/// Logical size of a range multigraph: edge payloads plus their gene-set
/// blocks. Deterministic (derived from data-structure sizes, not the
/// allocator), so it can live in the report's memory section.
fn range_graph_bytes(rg: &RangeGraph) -> u64 {
    let mut bytes = 0u64;
    for e in rg.graph.edges() {
        bytes += std::mem::size_of::<RatioRange>() as u64 + bitset_bytes(&e.payload.genes);
    }
    bytes
}

/// Logical size of a set of biclusters (gene blocks + sample indices).
fn biclusters_bytes(bcs: &[Bicluster]) -> u64 {
    bcs.iter()
        .map(|b| {
            std::mem::size_of::<Bicluster>() as u64
                + bitset_bytes(&b.genes)
                + (b.samples.len() * std::mem::size_of::<usize>()) as u64
        })
        .sum()
}

/// Logical size of a set of triclusters.
fn triclusters_bytes(cs: &[Tricluster]) -> u64 {
    cs.iter()
        .map(|c| {
            std::mem::size_of::<Tricluster>() as u64
                + bitset_bytes(&c.genes)
                + ((c.samples.len() + c.times.len()) * std::mem::size_of::<usize>()) as u64
        })
        .sum()
}

/// What one per-slice worker returns: the slice's biclusters plus its
/// locally accumulated stats and phase durations.
struct SliceOutput {
    t: usize,
    n_ranges: usize,
    biclusters: Vec<Bicluster>,
    truncated: bool,
    rg_stats: RangeGraphStats,
    bc_stats: BiclusterStats,
    rg_time: Duration,
    bc_time: Duration,
    /// Logical bytes of this slice's range multigraph (it is dropped before
    /// the worker returns; the caller keeps the per-run peak).
    rg_bytes: u64,
}

/// Runs phases 1+2 for one slice, timing each phase from inside the worker
/// (this is what makes the summed-CPU `Timings::range_graphs` view
/// possible). Trace events go straight to `sink`; counters are accumulated
/// locally and merged by the caller in slice order, keeping them
/// deterministic under any thread schedule.
///
/// Under slice-level fan-out the caller passes `1` for both worker counts
/// (this slice shares the machine with its siblings); under intra-slice
/// fan-out the slice owns all workers and fans out internally at pair
/// (range graph) and branch (DFS) granularity.
fn mine_slice(
    m: &Matrix3,
    t: usize,
    params: &Params,
    sink: &dyn EventSink,
    rg_workers: usize,
    bc_workers: usize,
    ctrl: &RunCtrl,
) -> SliceOutput {
    fail_point_panic("core.slice");
    let _tl_slice = timeline::span_with(names::T_SLICE, || format!("t={t}"));
    let collect_hists = sink.wants_histograms();
    let rg_start = Instant::now();
    let rg_span = timeline::span(names::SPAN_RANGE_GRAPH);
    let (rg, rg_stats) = build_range_graph_ctrl(m, t, params, sink, rg_workers, ctrl);
    drop(rg_span);
    let rg_time = rg_start.elapsed();
    let n_ranges = rg.n_ranges();
    let rg_bytes = range_graph_bytes(&rg);
    let bc_start = Instant::now();
    let bc_span = timeline::span(names::SPAN_BICLUSTER);
    let (biclusters, truncated, bc_stats) =
        mine_biclusters_ctrl(m, &rg, params, collect_hists, bc_workers, ctrl);
    drop(bc_span);
    let bc_time = bc_start.elapsed();
    emit(sink, || {
        Event::new("miner.slice")
            .field("time", t)
            .field("ranges", n_ranges)
            .field("biclusters", biclusters.len())
            .field("range_graph_ns", rg_time.as_nanos() as u64)
            .field("bicluster_ns", bc_time.as_nanos() as u64)
    });
    if let Some(p) = &ctrl.progress {
        p.slice_done();
    }
    SliceOutput {
        t,
        n_ranges,
        biclusters,
        truncated,
        rg_stats,
        bc_stats,
        rg_time,
        bc_time,
        rg_bytes,
    }
}

/// Runs the full TriCluster pipeline on `m` with the given parameters.
///
/// The matrix is mined as-is (genes × samples × times); use [`mine_auto`]
/// to let the library apply the paper's canonical transposition first.
///
/// # Errors
///
/// Returns a typed [`MineError`] for conditions detected at the front door
/// (invalid [`Params`], an explicit `±inf` cell, an all-`NaN` matrix, a
/// memory budget smaller than the input matrix) and for panics that escape
/// every isolation boundary. Exhausting a run budget mid-flight is *not* an
/// error: it yields `Ok` with [`MiningResult::truncation`] set.
pub fn mine(m: &Matrix3, params: &Params) -> Result<MiningResult, MineError> {
    mine_observed(m, params, &NullSink)
}

/// Validates the inputs [`mine`] is about to work on; all checks are
/// deterministic scans, so the same input always fails the same way.
fn validate_input(m: &Matrix3, params: &Params) -> Result<(), MineError> {
    params.validate()?;
    let (ng, ns, nt) = m.dims();
    let mut finite = 0usize;
    for g in 0..ng {
        for s in 0..ns {
            for t in 0..nt {
                let v = m.get(g, s, t);
                if v.is_infinite() {
                    return Err(MineError::NonFiniteInput {
                        gene: g,
                        sample: s,
                        time: t,
                        value: v,
                    });
                }
                if !v.is_nan() {
                    finite += 1;
                }
            }
        }
    }
    // NaN is the missing-value marker and is skipped cell-by-cell, but a
    // matrix with cells and *no* values at all is unminable.
    if ng * ns * nt > 0 && finite == 0 {
        return Err(MineError::DegenerateInput {
            reason: "every cell is NaN (missing)".to_owned(),
        });
    }
    if let Some(budget) = params.max_memory {
        let matrix_bytes = (ng * ns * nt * std::mem::size_of::<f64>()) as u64;
        if matrix_bytes > budget {
            return Err(MineError::MemoryBudget {
                required: matrix_bytes,
                budget,
            });
        }
    }
    Ok(())
}

/// Like [`mine`], routing instrumentation through `sink`.
///
/// The sink receives trace events as they happen (from inside the worker
/// threads; it must be `Sync`) plus every counter and span of the final
/// [`MiningResult::report`]. Pass [`NullSink`] for zero-overhead mining —
/// the report is built from locally accumulated stats either way.
pub fn mine_observed(
    m: &Matrix3,
    params: &Params,
    sink: &dyn EventSink,
) -> Result<MiningResult, MineError> {
    mine_observed_cancellable(m, params, sink, crate::cancel::CancelHandle::new())
}

/// Like [`mine_observed`], with an external [`CancelHandle`] wired into the
/// run's [`CancelToken`]: tripping the handle from another thread winds the
/// run down cooperatively into an `Ok` result truncated with
/// [`TruncationReason::Cancelled`]. This is the entry point the
/// [`Session`](crate::engine::Session) API builds on.
///
/// [`CancelHandle`]: crate::cancel::CancelHandle
pub fn mine_observed_cancellable(
    m: &Matrix3,
    params: &Params,
    sink: &dyn EventSink,
    handle: crate::cancel::CancelHandle,
) -> Result<MiningResult, MineError> {
    validate_input(m, params)?;
    let mut ctrl = RunCtrl::for_params_with_handle(params, handle);
    ctrl.progress = sink.progress();
    ctrl.timeline = sink.timeline().cloned();
    // The matrix itself is the first charge against the memory budget
    // (validate_input guarantees it fits).
    let (ng, ns, nt) = m.dims();
    ctrl.token
        .charge((ng * ns * nt * std::mem::size_of::<f64>()) as u64);
    if let Some(p) = &ctrl.progress {
        p.set_budgets(params.deadline, params.max_memory, params.max_candidates);
        p.set_logical_bytes(ctrl.token.charged_bytes());
    }
    // Last line of defense: a panic that escapes every isolation boundary
    // (or is raised on the coordinating thread itself) becomes a typed
    // error instead of a process abort.
    match catch_unwind(AssertUnwindSafe(|| {
        if let Some(message) = fail_point("core.mine.entry") {
            return Err(MineError::Fault {
                site: "core.mine.entry",
                message,
            });
        }
        Ok(mine_pipeline(m, params, sink, &ctrl))
    })) {
        Ok(result) => result,
        Err(payload) => Err(MineError::Panic {
            message: panic_message(payload),
        }),
    }
}

/// The pipeline body: phases 1–4 plus report assembly, under `ctrl`'s
/// budgets and fault collection.
fn mine_pipeline(
    m: &Matrix3,
    params: &Params,
    sink: &dyn EventSink,
    ctrl: &RunCtrl,
) -> MiningResult {
    let n_times = m.n_times();
    let mut timings = Timings::default();
    let report_sink = ReportSink::new(sink);
    let sink = &report_sink;
    // Inert unless the binary installed obs' tracking allocator; phase
    // boundaries below credit allocator deltas to the phase that ran.
    let mut phase_alloc = alloc::PhaseAlloc::begin();
    // Timeline journaling for the coordinating thread (worker threads
    // attach inside their spawn closures); a `None` timeline keeps every
    // ambient record call a thread-local check.
    let _tl_main = sink.timeline().map(|t| t.attach("main"));
    if let Some(p) = &ctrl.progress {
        p.set_phase(Phase::Slices);
        p.add_slices_total(n_times as u64);
    }

    // Phase 1+2 per slice, fanned out across worker threads. Each worker
    // times its own phases so range-graph vs bicluster CPU time stays
    // separable even in parallel.
    let wall_start = Instant::now();
    let mut per_time_biclusters: Vec<Vec<Bicluster>> = vec![Vec::new(); n_times];
    let mut ranges_per_time: Vec<usize> = vec![0; n_times];
    let mut truncated = false;
    let threads = params.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    // Two-level scheduler: with at least as many slices as workers, striping
    // whole slices keeps every worker busy with zero coordination. When
    // workers outnumber slices (the common microarray shape: few time
    // points, huge slices), slices run one at a time and fan out internally
    // at (column-pair) and (sample-seed-branch) granularity instead.
    let intra = match params.fanout {
        FanoutMode::Slice => false,
        FanoutMode::Pair => threads > 1,
        FanoutMode::Auto => threads > 1 && threads > n_times,
    };
    let rg_workers = if intra { threads } else { 1 };
    // A global `max_candidates` budget must be spent in branch order, which
    // serializes the DFS; see `mine_biclusters_workers`.
    let bc_workers = if intra && params.max_candidates.is_none() {
        threads
    } else {
        1
    };
    let slice_workers = if intra {
        1
    } else {
        threads.min(n_times.max(1))
    };
    let fanout = FanoutDecision {
        range_graph: if intra {
            FanoutLevel::Pair
        } else {
            FanoutLevel::Slice
        },
        bicluster: if bc_workers > 1 {
            FanoutLevel::Branch
        } else {
            FanoutLevel::Slice
        },
        threads,
    };
    emit(sink, || {
        Event::new("miner.fanout")
            .field("range_graph", fanout.range_graph.as_str())
            .field("bicluster", fanout.bicluster.as_str())
            .field("threads", threads)
    });
    let tl_slices = timeline::span(names::SPAN_SLICES_WALL);
    let mut slices: Vec<SliceOutput> = if slice_workers <= 1 || n_times <= 1 {
        let mut outs = Vec::with_capacity(n_times);
        for t in 0..n_times {
            if ctrl.token.deadline_exceeded() {
                break;
            }
            let out = isolate(
                &ctrl.faults,
                "slice",
                || format!("t={t}"),
                || mine_slice(m, t, params, sink, rg_workers, bc_workers, ctrl),
            );
            if let Some(out) = out {
                outs.push(out);
            }
        }
        outs
    } else {
        // Slices are striped across exactly `slice_workers` workers; each
        // worker returns its outputs and the caller re-sorts by slice index.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..slice_workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _tl = sink.timeline().map(|t| t.attach("slice"));
                        (w..n_times)
                            .step_by(slice_workers)
                            .filter_map(|t| {
                                if ctrl.token.deadline_exceeded() {
                                    return None;
                                }
                                isolate(
                                    &ctrl.faults,
                                    "slice",
                                    || format!("t={t}"),
                                    || mine_slice(m, t, params, sink, 1, 1, ctrl),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("slice worker panicked"))
                .collect()
        })
    };
    drop(tl_slices);
    timings.slices_wall = wall_start.elapsed();

    // Merge worker outputs in slice order: every counter and span below is
    // published from this single thread, so totals and span counts are
    // identical regardless of how the slices were scheduled.
    slices.sort_by_key(|s| s.t);
    let mut rg_total = RangeGraphStats::default();
    let mut bc_total = BiclusterStats::default();
    let collect_hists = sink.wants_histograms();
    let mut slice_hists = collect_hists.then(|| (Histogram::default(), Histogram::default()));
    let mut rg_peak_bytes = 0u64;
    let mut memory_truncated = false;
    for out in slices {
        ranges_per_time[out.t] = out.n_ranges;
        truncated |= out.truncated;
        rg_total.absorb(&out.rg_stats);
        bc_total.absorb(&out.bc_stats);
        rg_peak_bytes = rg_peak_bytes.max(out.rg_bytes);
        if let Some((edges, bcs)) = slice_hists.as_mut() {
            edges.record(out.n_ranges as u64);
            bcs.record(out.biclusters.len() as u64);
        }
        // Memory budget: retained bicluster bytes are charged here, on the
        // single merge thread in slice order, so which slices get dropped
        // (this one and every later one, once the budget tips) is identical
        // across thread counts and fan-out modes.
        if !memory_truncated && ctrl.token.charge(biclusters_bytes(&out.biclusters)) {
            per_time_biclusters[out.t] = out.biclusters;
        } else {
            memory_truncated = true;
        }
        timings.range_graphs += out.rg_time;
        timings.biclusters += out.bc_time;
        sink.span(names::SPAN_RANGE_GRAPH, out.rg_time);
        sink.span(names::SPAN_BICLUSTER, out.bc_time);
        // Live monitoring reads the logical-bytes gauge mid-phase, so
        // refresh it per merged slice, not just at the phase boundary.
        if let Some(p) = &ctrl.progress {
            p.set_logical_bytes(ctrl.token.charged_bytes());
        }
    }
    if let Some(p) = &ctrl.progress {
        p.set_logical_bytes(ctrl.token.charged_bytes());
    }
    sink.span(names::SPAN_SLICES_WALL, timings.slices_wall);
    rg_total.publish(sink);
    bc_total.publish(sink);
    if let Some((edges, bcs)) = &slice_hists {
        sink.histogram(names::H_SLICE_EDGES, edges);
        sink.histogram(names::H_SLICE_BICLUSTERS, bcs);
    }

    phase_alloc.phase_end("slices");

    if let Some(p) = &ctrl.progress {
        p.set_phase(Phase::Tricluster);
    }
    let tri_start = Instant::now();
    let tl_tri = timeline::span(names::SPAN_TRICLUSTER);
    // The tricluster DFS has no intra-phase fan-out, so it is isolated at
    // phase granularity: a panic costs the whole phase (no triclusters) but
    // the per-slice biclusters and the report survive.
    let (mut triclusters, tri_cut, tri_stats) = isolate(
        &ctrl.faults,
        "tricluster",
        || "phase".to_owned(),
        || {
            fail_point_panic("core.tricluster.phase");
            mine_triclusters_ctrl(m, &per_time_biclusters, params, collect_hists, ctrl)
        },
    )
    .unwrap_or_default();
    drop(tl_tri);
    truncated |= tri_cut;
    timings.triclusters = tri_start.elapsed();
    sink.span(names::SPAN_TRICLUSTER, timings.triclusters);
    tri_stats.publish(sink);
    phase_alloc.phase_end("triclusters");

    if let Some(p) = &ctrl.progress {
        p.set_phase(Phase::Prune);
    }
    let prune_start = Instant::now();
    let tl_prune = timeline::span(names::SPAN_PRUNE);
    let prune_stats = if let Some(merge) = &params.merge {
        // merge_and_prune_observed publishes the prune counters itself. It
        // consumes the triclusters, so a panic mid-phase loses them — the
        // recorded WorkerFailure and the truncated flag say so.
        let taken = std::mem::take(&mut triclusters);
        match isolate(
            &ctrl.faults,
            "prune",
            || "phase".to_owned(),
            || {
                fail_point_panic("core.prune.phase");
                merge_and_prune_observed(taken, merge, sink)
            },
        ) {
            Some((survivors, stats)) => {
                triclusters = survivors;
                stats
            }
            None => PruneStats::default(),
        }
    } else {
        PruneStats::default()
    };
    drop(tl_prune);
    timings.prune = prune_start.elapsed();
    sink.span(names::SPAN_PRUNE, timings.prune);

    // Deterministic output order: by genes, then samples, then times.
    triclusters.sort_by(|a, b| {
        a.genes
            .to_vec()
            .cmp(&b.genes.to_vec())
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });

    // Logical memory accounting: sizes derived from the data structures
    // themselves, so these counters stay deterministic across thread counts.
    let (ng, ns, nt) = (m.n_genes() as u64, m.n_samples() as u64, n_times as u64);
    sink.counter(
        names::M_MATRIX_BYTES,
        ng * ns * nt * std::mem::size_of::<f64>() as u64,
    );
    sink.counter(names::M_RANGEGRAPH_BYTES, rg_peak_bytes);
    sink.counter(
        names::M_BICLUSTER_BYTES,
        per_time_biclusters
            .iter()
            .map(|b| biclusters_bytes(b))
            .sum(),
    );
    sink.counter(names::M_TRICLUSTER_BYTES, triclusters_bytes(&triclusters));
    // Measured allocator counters, only when a tracking allocator is
    // installed (feature-gated in the binaries). These are *not*
    // deterministic; default builds never emit them.
    if let Some(totals) = phase_alloc.finish("prune") {
        sink.counter(names::M_ALLOC_TOTAL_BYTES, totals.bytes);
        sink.counter(names::M_ALLOC_TOTAL_CALLS, totals.allocs);
        sink.counter(names::M_ALLOC_PEAK_BYTES, totals.peak_live_bytes);
        // Per-phase attribution at the sequential phase boundaries. Once
        // `finish` is Some the allocator is installed, so every boundary
        // sampled successfully.
        for d in phase_alloc.phases() {
            let (bytes_name, calls_name) = match d.phase {
                "slices" => (names::M_ALLOC_SLICES_BYTES, names::M_ALLOC_SLICES_CALLS),
                "triclusters" => (
                    names::M_ALLOC_TRICLUSTERS_BYTES,
                    names::M_ALLOC_TRICLUSTERS_CALLS,
                ),
                _ => (names::M_ALLOC_PRUNE_BYTES, names::M_ALLOC_PRUNE_CALLS),
            };
            sink.counter(bytes_name, d.bytes);
            sink.counter(calls_name, d.allocs);
        }
    }

    // Fault + truncation assembly. The deadline check reads the latched
    // flag, not the clock: a run that *finished* under its deadline is never
    // marked truncated by the act of checking.
    let worker_failures = ctrl.faults.take_sorted();
    if !worker_failures.is_empty() {
        sink.counter(names::F_WORKER_FAILURES, worker_failures.len() as u64);
    }
    let truncation = crate::cancel::resolve_truncation(
        ctrl.token.cancel_was_hit(),
        ctrl.token.deadline_was_hit(),
        memory_truncated,
        truncated,
        !worker_failures.is_empty(),
    );
    if let Some(reason) = truncation {
        timeline::instant_with(names::T_TRUNCATED, || reason.as_str().to_owned());
    }
    if let Some(p) = &ctrl.progress {
        p.set_logical_bytes(ctrl.token.charged_bytes());
        p.set_phase(Phase::Done);
    }

    MiningResult {
        triclusters,
        per_time_biclusters,
        ranges_per_time,
        prune_stats,
        truncated: truncation.is_some(),
        truncation,
        worker_failures,
        timings,
        report: report_sink.into_report(),
        fanout,
    }
}

/// Like [`mine`], but first permutes the matrix so the largest dimension is
/// mined as genes (the paper always transposes this way, exploiting the
/// symmetry Lemma 1), then maps the mined clusters back to the original
/// coordinates.
pub fn mine_auto(m: &Matrix3, params: &Params) -> Result<MiningResult, MineError> {
    mine_auto_observed(m, params, &NullSink)
}

/// Like [`mine_auto`], routing instrumentation through `sink`
/// (see [`mine_observed`]).
pub fn mine_auto_observed(
    m: &Matrix3,
    params: &Params,
    sink: &dyn EventSink,
) -> Result<MiningResult, MineError> {
    let order = m.canonical_permutation();
    if order == [Axis::Gene, Axis::Sample, Axis::Time] {
        return mine_observed(m, params, sink);
    }
    let permuted = m.permuted(order);
    let mut result = mine_observed(&permuted, params, sink)?;
    let n = [m.n_genes(), m.n_samples(), m.n_times()];
    result.triclusters = result
        .triclusters
        .into_iter()
        .map(|c| unpermute_cluster(&c, order, n))
        .collect();
    // per-time biclusters and range counts refer to the permuted axes;
    // clear them rather than report misleading indices.
    result.per_time_biclusters = Vec::new();
    result.ranges_per_time = Vec::new();
    result.triclusters.sort_by(|a, b| {
        a.genes
            .to_vec()
            .cmp(&b.genes.to_vec())
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });
    Ok(result)
}

/// Maps a cluster mined in permuted coordinates back to the original axes.
///
/// `order[k]` names the original axis that served as mined axis `k`; so the
/// mined axis-`k` index set belongs to original axis `order[k]`.
fn unpermute_cluster(c: &Tricluster, order: [Axis; 3], orig_dims: [usize; 3]) -> Tricluster {
    let mined_sets: [Vec<usize>; 3] = [c.genes.to_vec(), c.samples.clone(), c.times.clone()];
    let mut per_axis: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (k, set) in mined_sets.into_iter().enumerate() {
        per_axis[order[k].index()] = set;
    }
    Tricluster::new(
        BitSet::from_indices(orig_dims[0], per_axis[0].iter().copied()),
        per_axis[1].clone(),
        per_axis[2].clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MergeParams;
    use crate::testdata::{paper_table1, paper_table1_expected};

    fn params() -> Params {
        Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .build()
            .unwrap()
    }

    fn view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
        cs.iter()
            .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
            .collect()
    }

    #[test]
    fn full_pipeline_on_paper_example() {
        let m = paper_table1();
        let result = mine(&m, &params()).unwrap();
        let mut want = paper_table1_expected();
        want.sort();
        assert_eq!(view(&result.triclusters), want);
        assert_eq!(result.per_time_biclusters.len(), 2);
        assert_eq!(result.per_time_biclusters[0].len(), 3);
        assert_eq!(result.per_time_biclusters[1].len(), 3);
        assert!(result.ranges_per_time.iter().all(|&n| n > 0));
    }

    #[test]
    fn metrics_of_paper_example() {
        let m = paper_table1();
        let result = mine(&m, &params()).unwrap();
        let met = result.metrics(&m);
        assert_eq!(met.cluster_count, 3);
        // C1: 3*4*2=24, C2: 4*3*2=24, C3: 3*4*2=24 -> 72 cells;
        // overlaps: C2∩C3 share g0,g9 x s1,s4 x 2t = 8 cells;
        // C1∩C2 share s1,s4,s6 but no genes -> 0; C1∩C3 no genes -> 0.
        assert_eq!(met.element_sum, 72);
        assert_eq!(met.coverage, 64);
        assert!((met.overlap - 8.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn merge_pass_runs_when_enabled() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .merge(MergeParams {
                eta: 0.01,
                gamma: 0.01,
            })
            .build()
            .unwrap();
        let result = mine(&m, &p).unwrap();
        // thresholds this small change nothing on the paper example
        assert_eq!(result.triclusters.len(), 3);
    }

    #[test]
    fn miner_facade_equivalent_to_mine() {
        let m = paper_table1();
        let miner = Miner::new(params());
        assert_eq!(
            view(&miner.mine(&m).unwrap().triclusters),
            view(&mine(&m, &params()).unwrap().triclusters)
        );
        assert_eq!(miner.params().min_genes, 3);
    }

    #[test]
    fn mine_auto_matches_mine_on_canonical_input() {
        let m = paper_table1(); // 10 x 7 x 2 is already canonical
        assert_eq!(
            view(&mine_auto(&m, &params()).unwrap().triclusters),
            view(&mine(&m, &params()).unwrap().triclusters)
        );
    }

    #[test]
    fn mine_auto_recovers_clusters_through_permutation() {
        // Put the paper matrix's gene axis on the *time* axis: dims 2x7x10.
        let m = paper_table1();
        let twisted = m.permuted([Axis::Time, Axis::Sample, Axis::Gene]);
        assert_eq!(twisted.dims(), (2, 7, 10));
        // Mine with thresholds transposed accordingly: mined genes = orig
        // genes again after canonical permutation (largest dim = 10).
        let result = mine_auto(&twisted, &params()).unwrap();
        // Clusters come back in *twisted* coordinates: genes axis of
        // `twisted` is original times, times axis is original genes.
        let mut got: Vec<_> = result
            .triclusters
            .iter()
            .map(|c| (c.times.clone(), c.samples.clone(), c.genes.to_vec()))
            .collect();
        got.sort();
        let mut want = paper_table1_expected();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn unlimited_search_is_not_truncated() {
        let m = paper_table1();
        assert!(!mine(&m, &params()).unwrap().truncated);
    }

    #[test]
    fn tiny_budget_truncates_but_stays_sound() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(2)
            .build()
            .unwrap();
        let result = mine(&m, &p).unwrap();
        assert!(result.truncated);
        // whatever was found is still a valid (possibly incomplete) subset
        let full = mine(&m, &params()).unwrap();
        for c in &result.triclusters {
            assert!(
                full.triclusters.iter().any(|f| c.is_subcluster_of(f)),
                "truncated result produced a cluster outside the full set: {c:?}"
            );
        }
    }

    #[test]
    fn generous_budget_matches_unlimited() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(1_000_000)
            .build()
            .unwrap();
        let limited = mine(&m, &p).unwrap();
        assert!(!limited.truncated);
        assert_eq!(
            limited.triclusters,
            mine(&m, &params()).unwrap().triclusters
        );
    }

    #[test]
    fn timings_are_populated() {
        let m = paper_table1();
        let result = mine(&m, &params()).unwrap();
        assert!(result.timings.total() > Duration::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let m = paper_table1();
        let a = mine(&m, &params()).unwrap();
        let b = mine(&m, &params()).unwrap();
        assert_eq!(view(&a.triclusters), view(&b.triclusters));
    }

    #[test]
    fn report_has_spans_and_nonzero_counters() {
        let m = paper_table1();
        let result = mine(&m, &params()).unwrap();
        let r = &result.report;
        for span in [
            tricluster_obs::names::SPAN_SLICES_WALL,
            tricluster_obs::names::SPAN_RANGE_GRAPH,
            tricluster_obs::names::SPAN_BICLUSTER,
            tricluster_obs::names::SPAN_TRICLUSTER,
            tricluster_obs::names::SPAN_PRUNE,
        ] {
            assert!(r.spans.contains_key(span), "missing span {span}");
        }
        // per-slice spans carry one record per slice
        assert_eq!(
            r.spans[tricluster_obs::names::SPAN_RANGE_GRAPH].count,
            m.n_times() as u64
        );
        for counter in [
            tricluster_obs::names::RG_RANGES_VALID,
            tricluster_obs::names::BC_NODES,
            tricluster_obs::names::BC_RECORDED,
            tricluster_obs::names::TC_NODES,
            tricluster_obs::names::TC_RECORDED,
        ] {
            assert!(r.counter(counter) > 0, "counter {counter} is zero");
        }
    }

    /// The ISSUE's headline determinism guarantee: the counter map is
    /// byte-identical across repeated runs *and* across thread counts.
    #[test]
    fn report_counters_identical_across_runs_and_thread_counts() {
        let m = paper_table1();
        let mk = |threads: usize| {
            Params::builder()
                .epsilon(0.01)
                .min_size(3, 3, 2)
                .threads(threads)
                .build()
                .unwrap()
        };
        let serial = mine(&m, &mk(1)).unwrap();
        let parallel = mine(&m, &mk(4)).unwrap();
        let serial_again = mine(&m, &mk(1)).unwrap();
        assert_eq!(
            serial.report.counter_map(),
            serial_again.report.counter_map()
        );
        assert_eq!(serial.report.counter_map(), parallel.report.counter_map());
        assert_eq!(
            view(&serial.triclusters),
            view(&parallel.triclusters),
            "thread count must not change the mined clusters"
        );
        // span *counts* are schedule-independent too (durations are not)
        let spans = |r: &tricluster_obs::RunReport| {
            r.spans
                .iter()
                .map(|(name, s)| (*name, s.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(spans(&serial.report), spans(&parallel.report));
    }

    /// Satellite of ISSUE 2: the value histograms (and the logical memory
    /// counters) are input-determined, so `--threads 1` and `--threads 4`
    /// produce byte-identical distributions on the paper's Table 1.
    #[test]
    fn report_histograms_identical_across_thread_counts() {
        let m = paper_table1();
        let mk = |threads: usize| {
            Params::builder()
                .epsilon(0.01)
                .min_size(3, 3, 2)
                .threads(threads)
                .build()
                .unwrap()
        };
        let serial = mine_observed(&m, &mk(1), &tricluster_obs::Recorder::new()).unwrap();
        let parallel = mine_observed(&m, &mk(4), &tricluster_obs::Recorder::new()).unwrap();
        assert!(
            !serial.report.histograms.is_empty(),
            "recording sink must trigger histogram collection"
        );
        assert_eq!(
            serial.report.histogram_map(),
            parallel.report.histogram_map()
        );
        assert_eq!(serial.report.counter_map(), parallel.report.counter_map());
        for name in [
            tricluster_obs::names::H_RG_EDGE_GENESET,
            tricluster_obs::names::H_BC_DEPTH,
            tricluster_obs::names::H_BC_FANOUT,
            tricluster_obs::names::H_TC_DEPTH,
            tricluster_obs::names::H_SLICE_EDGES,
            tricluster_obs::names::H_SLICE_BICLUSTERS,
        ] {
            assert!(
                serial.report.histogram(name).is_some(),
                "missing histogram {name}"
            );
        }
        for name in [
            tricluster_obs::names::M_MATRIX_BYTES,
            tricluster_obs::names::M_RANGEGRAPH_BYTES,
            tricluster_obs::names::M_BICLUSTER_BYTES,
            tricluster_obs::names::M_TRICLUSTER_BYTES,
        ] {
            assert!(serial.report.counter(name) > 0, "counter {name} is zero");
        }
        // matrix: 10 genes x 7 samples x 2 times x 8 bytes
        assert_eq!(
            serial.report.counter(tricluster_obs::names::M_MATRIX_BYTES),
            10 * 7 * 2 * 8
        );
        // the default NullSink path collects no histograms at all
        assert!(mine(&m, &mk(1)).unwrap().report.histograms.is_empty());
    }

    /// Tentpole of ISSUE 3: intra-slice fan-out (pair-level range graphs,
    /// branch-level DFS) yields byte-identical clusters, counters, and
    /// histograms to slice-level fan-out, at every thread count.
    #[test]
    fn fanout_modes_mine_identical_results() {
        let m = paper_table1();
        let mk = |mode: FanoutMode, threads: usize| {
            Params::builder()
                .epsilon(0.01)
                .min_size(3, 3, 2)
                .fanout(mode)
                .threads(threads)
                .build()
                .unwrap()
        };
        let baseline = mine_observed(
            &m,
            &mk(FanoutMode::Slice, 1),
            &tricluster_obs::Recorder::new(),
        )
        .unwrap();
        assert_eq!(baseline.fanout.range_graph, FanoutLevel::Slice);
        assert_eq!(baseline.fanout.bicluster, FanoutLevel::Slice);
        for (mode, threads) in [
            (FanoutMode::Pair, 1),
            (FanoutMode::Pair, 2),
            (FanoutMode::Pair, 8),
            (FanoutMode::Auto, 8), // 8 > 2 slices -> intra
            (FanoutMode::Slice, 8),
        ] {
            let r =
                mine_observed(&m, &mk(mode, threads), &tricluster_obs::Recorder::new()).unwrap();
            assert_eq!(
                view(&r.triclusters),
                view(&baseline.triclusters),
                "{mode:?} x{threads}"
            );
            assert_eq!(
                r.report.counter_map(),
                baseline.report.counter_map(),
                "{mode:?} x{threads}"
            );
            assert_eq!(
                r.report.histogram_map(),
                baseline.report.histogram_map(),
                "{mode:?} x{threads}"
            );
            let intra = threads > 1 && mode != FanoutMode::Slice;
            assert_eq!(
                r.fanout.range_graph,
                if intra {
                    FanoutLevel::Pair
                } else {
                    FanoutLevel::Slice
                },
                "{mode:?} x{threads}"
            );
            assert_eq!(
                r.fanout.bicluster,
                if intra {
                    FanoutLevel::Branch
                } else {
                    FanoutLevel::Slice
                },
                "{mode:?} x{threads}"
            );
            assert_eq!(r.fanout.threads, threads);
        }
    }

    /// A global candidate budget serializes the DFS (branch order is the
    /// spend order) but pair-level range graphs still apply.
    #[test]
    fn budget_keeps_dfs_serial_under_intra_fanout() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .fanout(FanoutMode::Pair)
            .threads(4)
            .max_candidates(1_000_000)
            .build()
            .unwrap();
        let r = mine(&m, &p).unwrap();
        assert_eq!(r.fanout.range_graph, FanoutLevel::Pair);
        assert_eq!(r.fanout.bicluster, FanoutLevel::Slice);
        assert!(!r.truncated);
        assert_eq!(
            view(&r.triclusters),
            view(&mine(&m, &params()).unwrap().triclusters)
        );
    }

    /// Mining against a recording sink yields the same report as the one
    /// embedded in the result, and the default path stays on [`NullSink`].
    #[test]
    fn observed_report_matches_external_recorder() {
        let m = paper_table1();
        let rec = tricluster_obs::Recorder::new();
        let result = mine_observed(&m, &params(), &rec).unwrap();
        let external = rec.snapshot();
        assert_eq!(result.report.counter_map(), external.counter_map());
        let quiet = mine(&m, &params()).unwrap();
        assert_eq!(result.report.counter_map(), quiet.report.counter_map());
    }

    #[test]
    fn mine_auto_observed_reports_through_permutation() {
        let m = paper_table1();
        let twisted = m.permuted([Axis::Time, Axis::Sample, Axis::Gene]);
        let rec = tricluster_obs::Recorder::new();
        let result = mine_auto_observed(&twisted, &params(), &rec).unwrap();
        assert!(!result.triclusters.is_empty());
        assert!(result.report.counter(tricluster_obs::names::TC_RECORDED) > 0);
        assert_eq!(
            rec.snapshot().counter_map(),
            result.report.counter_map(),
            "external sink sees the same counters"
        );
    }
}
