//! High-level mining pipeline (paper §4).
//!
//! [`mine`] wires the four phases together: per-slice range multigraphs,
//! per-slice bicluster mining (fanned out across threads — slices are
//! independent), tricluster enumeration, and the optional merge/prune pass.
//! [`mine_auto`] additionally applies the canonical transposition (largest
//! dimension mined as genes, per the symmetry Lemma 1) and maps the results
//! back to the caller's coordinates.

use crate::bicluster::mine_biclusters_with_budget;
use crate::cluster::{Bicluster, Tricluster};
use crate::metrics::{cluster_metrics, Metrics};
use crate::params::Params;
use crate::prune::{merge_and_prune, PruneStats};
use crate::rangegraph::build_range_graph;
use crate::tricluster::mine_triclusters_with_budget;
use std::time::{Duration, Instant};
use tricluster_bitset::BitSet;
use tricluster_matrix::{Axis, Matrix3};

/// Everything produced by one mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The final maximal triclusters (after merge/prune when enabled).
    pub triclusters: Vec<Tricluster>,
    /// The biclusters mined from each time slice (before the tricluster
    /// phase), for diagnostics and for the paper's per-slice analyses.
    pub per_time_biclusters: Vec<Vec<Bicluster>>,
    /// Total ranges (multigraph edges) per time slice.
    pub ranges_per_time: Vec<usize>,
    /// Statistics of the merge/prune pass (zeros when disabled).
    pub prune_stats: PruneStats,
    /// `true` when any search phase exhausted [`Params::max_candidates`];
    /// the clusters are sound but possibly incomplete.
    pub truncated: bool,
    /// Phase timings.
    pub timings: Timings,
}

/// Wall-clock duration of each phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Range multigraph construction, summed over slices.
    pub range_graphs: Duration,
    /// Bicluster mining, summed over slices (wall-clock of the parallel
    /// fan-out, not CPU time).
    pub biclusters: Duration,
    /// Tricluster enumeration.
    pub triclusters: Duration,
    /// Merge/prune pass.
    pub prune: Duration,
}

impl Timings {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.range_graphs + self.biclusters + self.triclusters + self.prune
    }
}

impl MiningResult {
    /// Computes the paper's quality metrics for the final clusters.
    pub fn metrics(&self, m: &Matrix3) -> Metrics {
        cluster_metrics(m, &self.triclusters)
    }
}

/// Reusable mining facade. Currently stateless; exists so callers can hold
/// a configured miner and to leave room for cross-run caching.
#[derive(Debug, Clone)]
pub struct Miner {
    params: Params,
}

impl Miner {
    /// Creates a miner with the given parameters.
    pub fn new(params: Params) -> Self {
        Miner { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs the full pipeline on `m`.
    pub fn mine(&self, m: &Matrix3) -> MiningResult {
        mine(m, &self.params)
    }
}

/// Runs the full TriCluster pipeline on `m` with the given parameters.
///
/// The matrix is mined as-is (genes × samples × times); use [`mine_auto`]
/// to let the library apply the paper's canonical transposition first.
pub fn mine(m: &Matrix3, params: &Params) -> MiningResult {
    let n_times = m.n_times();
    let mut timings = Timings::default();

    // Phase 1+2 per slice, in parallel. Each worker builds the range graph
    // and mines the slice's biclusters.
    let t0 = Instant::now();
    let mut per_time_biclusters: Vec<Vec<Bicluster>> = vec![Vec::new(); n_times];
    let mut ranges_per_time: Vec<usize> = vec![0; n_times];
    let mut truncated = false;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_times.max(1));
    if threads <= 1 || n_times <= 1 {
        for t in 0..n_times {
            let rg = build_range_graph(m, t, params);
            ranges_per_time[t] = rg.n_ranges();
            let (bcs, cut) = mine_biclusters_with_budget(m, &rg, params);
            per_time_biclusters[t] = bcs;
            truncated |= cut;
        }
    } else {
        let results: Vec<(usize, usize, Vec<Bicluster>, bool)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_times)
                    .map(|t| {
                        scope.spawn(move || {
                            let rg = build_range_graph(m, t, params);
                            let n_ranges = rg.n_ranges();
                            let (bcs, cut) = mine_biclusters_with_budget(m, &rg, params);
                            (t, n_ranges, bcs, cut)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("slice worker panicked"))
                    .collect()
            });
        for (t, n_ranges, bcs, cut) in results {
            ranges_per_time[t] = n_ranges;
            per_time_biclusters[t] = bcs;
            truncated |= cut;
        }
    }
    // Range-graph and bicluster time are not separable in the parallel
    // fan-out; attribute the whole fan-out to `biclusters` and leave
    // `range_graphs` as the (serial) remainder estimate of zero.
    timings.biclusters = t0.elapsed();

    let t1 = Instant::now();
    let (mut triclusters, tri_cut) = mine_triclusters_with_budget(m, &per_time_biclusters, params);
    truncated |= tri_cut;
    timings.triclusters = t1.elapsed();

    let t2 = Instant::now();
    let prune_stats = if let Some(merge) = &params.merge {
        let (survivors, stats) = merge_and_prune(std::mem::take(&mut triclusters), merge);
        triclusters = survivors;
        stats
    } else {
        PruneStats::default()
    };
    timings.prune = t2.elapsed();

    // Deterministic output order: by genes, then samples, then times.
    triclusters.sort_by(|a, b| {
        a.genes
            .to_vec()
            .cmp(&b.genes.to_vec())
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });

    MiningResult {
        triclusters,
        per_time_biclusters,
        ranges_per_time,
        prune_stats,
        truncated,
        timings,
    }
}

/// Like [`mine`], but first permutes the matrix so the largest dimension is
/// mined as genes (the paper always transposes this way, exploiting the
/// symmetry Lemma 1), then maps the mined clusters back to the original
/// coordinates.
pub fn mine_auto(m: &Matrix3, params: &Params) -> MiningResult {
    let order = m.canonical_permutation();
    if order == [Axis::Gene, Axis::Sample, Axis::Time] {
        return mine(m, params);
    }
    let permuted = m.permuted(order);
    let mut result = mine(&permuted, params);
    let n = [m.n_genes(), m.n_samples(), m.n_times()];
    result.triclusters = result
        .triclusters
        .into_iter()
        .map(|c| unpermute_cluster(&c, order, n))
        .collect();
    // per-time biclusters and range counts refer to the permuted axes;
    // clear them rather than report misleading indices.
    result.per_time_biclusters = Vec::new();
    result.ranges_per_time = Vec::new();
    result.triclusters.sort_by(|a, b| {
        a.genes
            .to_vec()
            .cmp(&b.genes.to_vec())
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });
    result
}

/// Maps a cluster mined in permuted coordinates back to the original axes.
///
/// `order[k]` names the original axis that served as mined axis `k`; so the
/// mined axis-`k` index set belongs to original axis `order[k]`.
fn unpermute_cluster(c: &Tricluster, order: [Axis; 3], orig_dims: [usize; 3]) -> Tricluster {
    let mined_sets: [Vec<usize>; 3] = [c.genes.to_vec(), c.samples.clone(), c.times.clone()];
    let mut per_axis: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (k, set) in mined_sets.into_iter().enumerate() {
        per_axis[order[k].index()] = set;
    }
    Tricluster::new(
        BitSet::from_indices(orig_dims[0], per_axis[0].iter().copied()),
        per_axis[1].clone(),
        per_axis[2].clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MergeParams;
    use crate::testdata::{paper_table1, paper_table1_expected};

    fn params() -> Params {
        Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .build()
            .unwrap()
    }

    fn view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
        cs.iter()
            .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
            .collect()
    }

    #[test]
    fn full_pipeline_on_paper_example() {
        let m = paper_table1();
        let result = mine(&m, &params());
        let mut want = paper_table1_expected();
        want.sort();
        assert_eq!(view(&result.triclusters), want);
        assert_eq!(result.per_time_biclusters.len(), 2);
        assert_eq!(result.per_time_biclusters[0].len(), 3);
        assert_eq!(result.per_time_biclusters[1].len(), 3);
        assert!(result.ranges_per_time.iter().all(|&n| n > 0));
    }

    #[test]
    fn metrics_of_paper_example() {
        let m = paper_table1();
        let result = mine(&m, &params());
        let met = result.metrics(&m);
        assert_eq!(met.cluster_count, 3);
        // C1: 3*4*2=24, C2: 4*3*2=24, C3: 3*4*2=24 -> 72 cells;
        // overlaps: C2∩C3 share g0,g9 x s1,s4 x 2t = 8 cells;
        // C1∩C2 share s1,s4,s6 but no genes -> 0; C1∩C3 no genes -> 0.
        assert_eq!(met.element_sum, 72);
        assert_eq!(met.coverage, 64);
        assert!((met.overlap - 8.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn merge_pass_runs_when_enabled() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .merge(MergeParams {
                eta: 0.01,
                gamma: 0.01,
            })
            .build()
            .unwrap();
        let result = mine(&m, &p);
        // thresholds this small change nothing on the paper example
        assert_eq!(result.triclusters.len(), 3);
    }

    #[test]
    fn miner_facade_equivalent_to_mine() {
        let m = paper_table1();
        let miner = Miner::new(params());
        assert_eq!(
            view(&miner.mine(&m).triclusters),
            view(&mine(&m, &params()).triclusters)
        );
        assert_eq!(miner.params().min_genes, 3);
    }

    #[test]
    fn mine_auto_matches_mine_on_canonical_input() {
        let m = paper_table1(); // 10 x 7 x 2 is already canonical
        assert_eq!(
            view(&mine_auto(&m, &params()).triclusters),
            view(&mine(&m, &params()).triclusters)
        );
    }

    #[test]
    fn mine_auto_recovers_clusters_through_permutation() {
        // Put the paper matrix's gene axis on the *time* axis: dims 2x7x10.
        let m = paper_table1();
        let twisted = m.permuted([Axis::Time, Axis::Sample, Axis::Gene]);
        assert_eq!(twisted.dims(), (2, 7, 10));
        // Mine with thresholds transposed accordingly: mined genes = orig
        // genes again after canonical permutation (largest dim = 10).
        let result = mine_auto(&twisted, &params());
        // Clusters come back in *twisted* coordinates: genes axis of
        // `twisted` is original times, times axis is original genes.
        let mut got: Vec<_> = result
            .triclusters
            .iter()
            .map(|c| (c.times.clone(), c.samples.clone(), c.genes.to_vec()))
            .collect();
        got.sort();
        let mut want = paper_table1_expected();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn unlimited_search_is_not_truncated() {
        let m = paper_table1();
        assert!(!mine(&m, &params()).truncated);
    }

    #[test]
    fn tiny_budget_truncates_but_stays_sound() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(2)
            .build()
            .unwrap();
        let result = mine(&m, &p);
        assert!(result.truncated);
        // whatever was found is still a valid (possibly incomplete) subset
        let full = mine(&m, &params());
        for c in &result.triclusters {
            assert!(
                full.triclusters.iter().any(|f| c.is_subcluster_of(f)),
                "truncated result produced a cluster outside the full set: {c:?}"
            );
        }
    }

    #[test]
    fn generous_budget_matches_unlimited() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(1_000_000)
            .build()
            .unwrap();
        let limited = mine(&m, &p);
        assert!(!limited.truncated);
        assert_eq!(limited.triclusters, mine(&m, &params()).triclusters);
    }

    #[test]
    fn timings_are_populated() {
        let m = paper_table1();
        let result = mine(&m, &params());
        assert!(result.timings.total() > Duration::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let m = paper_table1();
        let a = mine(&m, &params());
        let b = mine(&m, &params());
        assert_eq!(view(&a.triclusters), view(&b.triclusters));
    }
}
