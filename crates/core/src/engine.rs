//! Long-lived mining engine: tenant caps, dataset caching, cancellable
//! sessions.
//!
//! [`mine`](crate::mine) is a one-shot function: parse, run, drop. A
//! daemon serving many tenants needs three things it does not provide —
//! per-tenant *limits* that an individual job cannot exceed, *reuse* of
//! parsed datasets across repeat submissions, and a way to *stop* a run
//! that is already in flight. [`Engine`] owns the first two ([`TenantCaps`]
//! and a content-hash-keyed [`Dataset`] cache); [`Session`] owns the third
//! (one prepared run with a [`CancelHandle`] that can be tripped from any
//! thread). The CLI's `mine` command is a thin frontend over the same
//! types, so a job mined through `tricluster serve` takes exactly the
//! code path of a one-shot run — which is what makes the daemon's
//! byte-determinism guarantee possible at all.

use crate::cancel::CancelHandle;
use crate::error::MineError;
use crate::miner::{mine_observed_cancellable, MiningResult};
use crate::params::Params;
use std::io::BufReader;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tricluster_matrix::io::{self, IoError};
use tricluster_matrix::{Labels, Matrix3};
use tricluster_obs::ledger::content_hash;
use tricluster_obs::EventSink;

/// Server-wide ceilings on what any single job may request.
///
/// A tenant's [`Params`] are clamped against these at session creation:
/// requesting more than a cap silently lowers the request to the cap (and
/// flags the session [`clamped`](Session::was_clamped)); requesting
/// nothing where a cap exists applies the cap. `None` caps leave the
/// tenant's value untouched.
#[derive(Debug, Clone, Default)]
pub struct TenantCaps {
    /// Longest wall-clock deadline a job may run with.
    pub max_deadline: Option<Duration>,
    /// Largest logical-memory budget a job may hold.
    pub max_memory: Option<u64>,
    /// Largest candidate budget a job may spend.
    pub max_candidates: Option<u64>,
    /// Most worker threads a job may use.
    pub max_threads: Option<usize>,
}

impl TenantCaps {
    /// No ceilings: every tenant request passes through unchanged.
    pub fn unlimited() -> Self {
        TenantCaps::default()
    }

    /// Clamps `params` against these caps. Returns the effective params
    /// and whether anything was actually lowered or imposed.
    pub fn clamp(&self, params: &Params) -> (Params, bool) {
        fn cap<T: Copy + Ord>(requested: &mut Option<T>, cap: Option<T>, changed: &mut bool) {
            let effective = match (*requested, cap) {
                (Some(r), Some(c)) => Some(r.min(c)),
                (None, Some(c)) => Some(c),
                (r, None) => r,
            };
            if effective != *requested {
                *requested = effective;
                *changed = true;
            }
        }
        let mut p = params.clone();
        let mut changed = false;
        cap(&mut p.deadline, self.max_deadline, &mut changed);
        cap(&mut p.max_memory, self.max_memory, &mut changed);
        cap(&mut p.max_candidates, self.max_candidates, &mut changed);
        cap(&mut p.threads, self.max_threads, &mut changed);
        (p, changed)
    }
}

/// A parsed, ready-to-mine dataset plus its identity.
#[derive(Debug)]
pub struct Dataset {
    /// The parsed expression matrix.
    pub matrix: Matrix3,
    /// Axis labels from the TSV header/rows.
    pub labels: Labels,
    /// FNV-1a content hash of the raw bytes (`fnv1a:<16 hex>`), the same
    /// hash the run ledger records — so a ledger entry and a cache entry
    /// for the same upload agree on identity for free.
    pub hash: String,
    /// Raw (pre-parse) byte length, for admission accounting.
    pub raw_bytes: u64,
}

/// One prepared, cancellable mining run.
///
/// A session is created by [`Engine::session`] with caps already applied.
/// [`Session::run`] executes on the calling thread; [`Session::cancel`]
/// (or a clone of [`Session::cancel_handle`]) trips the run from any other
/// thread, winding it down into an `Ok` result truncated with
/// [`TruncationReason::Cancelled`](crate::TruncationReason::Cancelled).
#[derive(Debug)]
pub struct Session {
    params: Params,
    clamped: bool,
    handle: CancelHandle,
}

impl Session {
    /// A session with `params` used verbatim (no caps). Prefer
    /// [`Engine::session`] in multi-tenant settings.
    pub fn new(params: Params) -> Self {
        Session {
            params,
            clamped: false,
            handle: CancelHandle::new(),
        }
    }

    /// The effective (post-clamp) parameters this session will run with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Whether tenant caps lowered or imposed any budget.
    pub fn was_clamped(&self) -> bool {
        self.clamped
    }

    /// A clonable handle that cancels this session's run from any thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.handle.clone()
    }

    /// Requests cancellation of the run (idempotent).
    pub fn cancel(&self) {
        self.handle.cancel();
    }

    /// Mines `m` on the calling thread, routing instrumentation through
    /// `sink`. Exactly [`mine_observed`](crate::mine_observed) plus the
    /// session's cancel handle.
    ///
    /// # Errors
    ///
    /// The same typed [`MineError`]s as [`mine`](crate::mine);
    /// cancellation is *not* an error (it truncates the result).
    pub fn run(&self, m: &Matrix3, sink: &dyn EventSink) -> Result<MiningResult, MineError> {
        mine_observed_cancellable(m, &self.params, sink, self.handle.clone())
    }
}

/// How many parsed datasets [`Engine`] retains, most recently used first.
const DEFAULT_CACHE_ENTRIES: usize = 8;

/// A long-lived mining engine: tenant caps plus a dataset cache.
///
/// Thread-safe (`&self` everywhere); a daemon shares one engine across
/// all worker threads.
#[derive(Debug)]
pub struct Engine {
    caps: TenantCaps,
    cache_entries: usize,
    cache: Mutex<Vec<Arc<Dataset>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Engine {
    /// An engine enforcing `caps`, with the default cache size.
    pub fn new(caps: TenantCaps) -> Self {
        Engine::with_cache_entries(caps, DEFAULT_CACHE_ENTRIES)
    }

    /// An engine retaining at most `cache_entries` parsed datasets
    /// (0 disables caching).
    pub fn with_cache_entries(caps: TenantCaps, cache_entries: usize) -> Self {
        Engine {
            caps,
            cache_entries,
            cache: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The caps every session is clamped against.
    pub fn caps(&self) -> &TenantCaps {
        &self.caps
    }

    /// A session for one run of `params`, clamped against the caps.
    pub fn session(&self, params: &Params) -> Session {
        let (params, clamped) = self.caps.clamp(params);
        Session {
            params,
            clamped,
            handle: CancelHandle::new(),
        }
    }

    /// Parses a stacked TSV from raw bytes, reusing a cached parse when
    /// the FNV-1a content hash matches a previous submission. A cache hit
    /// skips parse and normalization entirely — the returned `Arc` is
    /// shared with every other job mining the same upload.
    ///
    /// # Errors
    ///
    /// The parse's [`IoError`] on malformed input; a failed parse caches
    /// nothing.
    pub fn dataset_from_bytes(&self, bytes: &[u8]) -> Result<Arc<Dataset>, IoError> {
        let hash = content_hash(bytes);
        {
            let mut cache = self.lock_cache();
            if let Some(i) = cache.iter().position(|d| d.hash == hash) {
                let hit = cache.remove(i);
                cache.insert(0, hit.clone()); // MRU to the front
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (matrix, labels) = io::read_stacked_tsv(BufReader::new(bytes))?;
        let dataset = Arc::new(Dataset {
            matrix,
            labels,
            hash,
            raw_bytes: bytes.len() as u64,
        });
        if self.cache_entries > 0 {
            let mut cache = self.lock_cache();
            // A racing parse of the same bytes may have landed first;
            // keeping both copies is harmless (identical content), but
            // don't double-insert the same hash.
            if !cache.iter().any(|d| d.hash == dataset.hash) {
                cache.insert(0, dataset.clone());
                if cache.len() > self.cache_entries {
                    let dropped = cache.len() - self.cache_entries;
                    cache.truncate(self.cache_entries);
                    self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(dataset)
    }

    /// Reads and parses a stacked TSV file through the cache.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] when the file cannot be read, else as
    /// [`Engine::dataset_from_bytes`].
    pub fn dataset_from_path(&self, path: &std::path::Path) -> Result<Arc<Dataset>, IoError> {
        let bytes = std::fs::read(path).map_err(IoError::Io)?;
        self.dataset_from_bytes(&bytes)
    }

    /// `(hits, misses, evictions)` of the dataset cache since
    /// construction. Evictions count parsed datasets dropped from the MRU
    /// list to stay under the capacity — a high rate relative to hits
    /// means the working set of distinct uploads exceeds `cache_entries`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Parsed datasets currently retained.
    pub fn cached_datasets(&self) -> usize {
        self.lock_cache().len()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Vec<Arc<Dataset>>> {
        self.cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::TruncationReason;
    use crate::testdata::paper_table1;
    use tricluster_obs::NullSink;

    fn table1_tsv() -> Vec<u8> {
        let m = paper_table1();
        let labels = Labels::default_for(m.n_genes(), m.n_samples(), m.n_times());
        let mut bytes = Vec::new();
        io::write_stacked_tsv(&mut bytes, &m, &labels).unwrap();
        bytes
    }

    fn table1_params() -> Params {
        Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn clamp_lowers_imposes_and_passes_through() {
        let caps = TenantCaps {
            max_deadline: Some(Duration::from_secs(10)),
            max_memory: Some(1 << 20),
            max_candidates: None,
            max_threads: Some(2),
        };
        let requested = Params::builder()
            .epsilon(0.01)
            .deadline(Duration::from_secs(60))
            .max_candidates(500)
            .threads(1)
            .build()
            .unwrap();
        let (p, clamped) = caps.clamp(&requested);
        assert!(clamped);
        assert_eq!(p.deadline, Some(Duration::from_secs(10)), "lowered");
        assert_eq!(p.max_memory, Some(1 << 20), "imposed");
        assert_eq!(p.max_candidates, Some(500), "uncapped passes through");
        assert_eq!(p.threads, Some(1), "under the cap passes through");

        let (same, clamped) = TenantCaps::unlimited().clamp(&requested);
        assert!(!clamped);
        assert_eq!(same, requested);
    }

    #[test]
    fn dataset_cache_hits_on_identical_bytes() {
        let engine = Engine::new(TenantCaps::unlimited());
        let bytes = table1_tsv();
        let a = engine.dataset_from_bytes(&bytes).unwrap();
        let b = engine.dataset_from_bytes(&bytes).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second submission reuses the parse");
        assert_eq!(engine.cache_stats(), (1, 1, 0));
        assert!(a.hash.starts_with("fnv1a:"), "{}", a.hash);
        assert_eq!(a.raw_bytes, bytes.len() as u64);

        // Different content is a different entry.
        let mut other = bytes.clone();
        other.extend_from_slice(b"\n");
        let c = engine.dataset_from_bytes(&other).unwrap();
        assert_ne!(c.hash, a.hash);
        assert_eq!(engine.cached_datasets(), 2);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = Engine::with_cache_entries(TenantCaps::unlimited(), 1);
        let first = table1_tsv();
        let mut second = first.clone();
        second.extend_from_slice(b"\n");
        let a = engine.dataset_from_bytes(&first).unwrap();
        let _ = engine.dataset_from_bytes(&second).unwrap();
        assert_eq!(engine.cached_datasets(), 1);
        let a2 = engine.dataset_from_bytes(&first).unwrap();
        assert!(!Arc::ptr_eq(&a, &a2), "evicted entry re-parses");
        assert_eq!(engine.cache_stats(), (0, 3, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::with_cache_entries(TenantCaps::unlimited(), 0);
        let bytes = table1_tsv();
        engine.dataset_from_bytes(&bytes).unwrap();
        assert_eq!(engine.cached_datasets(), 0);
    }

    #[test]
    fn malformed_bytes_error_and_cache_nothing() {
        let engine = Engine::new(TenantCaps::unlimited());
        assert!(engine.dataset_from_bytes(b"g\tnot-a-number\n").is_err());
        assert_eq!(engine.cached_datasets(), 0);
    }

    #[test]
    fn session_runs_and_matches_one_shot_mine() {
        let engine = Engine::new(TenantCaps::unlimited());
        let dataset = engine.dataset_from_bytes(&table1_tsv()).unwrap();
        let params = table1_params();
        let session = engine.session(&params);
        assert!(!session.was_clamped());
        let via_session = session.run(&dataset.matrix, &NullSink).unwrap();
        let one_shot = crate::mine(&dataset.matrix, &params).unwrap();
        assert_eq!(
            via_session.triclusters.len(),
            one_shot.triclusters.len(),
            "session path is the one-shot path"
        );
    }

    #[test]
    fn cancelled_session_truncates_with_cancelled_reason() {
        let dataset = {
            let engine = Engine::new(TenantCaps::unlimited());
            engine.dataset_from_bytes(&table1_tsv()).unwrap()
        };
        let session = Session::new(table1_params());
        session.cancel();
        let result = session.run(&dataset.matrix, &NullSink).unwrap();
        assert!(result.truncated);
        assert_eq!(result.truncation, Some(TruncationReason::Cancelled));
        assert!(
            result.triclusters.is_empty(),
            "a pre-cancelled run does no slice work"
        );
    }

    #[test]
    fn cancel_mid_run_from_another_thread_yields_a_sound_subset() {
        let dataset = {
            let engine = Engine::new(TenantCaps::unlimited());
            engine.dataset_from_bytes(&table1_tsv()).unwrap()
        };
        let params = table1_params();
        let full = crate::mine(&dataset.matrix, &params).unwrap();
        let session = Session::new(params);
        let handle = session.cancel_handle();
        // Trip concurrently with the run; whichever slice poll sees it
        // first stops the run there. Every outcome must be a subset.
        let canceller = std::thread::spawn(move || {
            handle.cancel();
        });
        let result = session.run(&dataset.matrix, &NullSink).unwrap();
        canceller.join().unwrap();
        if result.truncated {
            assert_eq!(result.truncation, Some(TruncationReason::Cancelled));
        }
        for c in &result.triclusters {
            assert!(
                full.triclusters.iter().any(|f| c.is_subcluster_of(f)),
                "cancelled run invented a cluster"
            );
        }
    }
}
