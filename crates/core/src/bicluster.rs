//! BICLUSTER: mining maximal biclusters from the range multigraph
//! (paper §4.2, Figure 3).
//!
//! The miner performs a depth-first set-enumeration over sample columns.
//! The candidate `C = X × Y` starts as `(all genes) × ∅`; extending `Y` by a
//! new column `s_b` requires choosing, for **every** `s_a ∈ Y`, one range
//! edge `(s_a, s_b)` of the multigraph whose gene-set keeps
//! `|X ∩ ⋂ G(R)| ≥ mx`. That makes every recorded `Y` a clique of the range
//! multigraph constrained by the gene threshold — exactly the paper's
//! "constrained maximal clique" search.
//!
//! Per the pseudo-code, the `δ^x`/`δ^y`/`my` checks gate only the
//! *recording* of a candidate (lines 2–6), never its expansion; `mx` prunes
//! expansion because gene-sets shrink monotonically along a DFS path.

use crate::cluster::Bicluster;
use crate::params::Params;
use crate::range::RatioRange;
use crate::rangegraph::RangeGraph;
use std::collections::HashSet;
use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;
use tricluster_obs::{names, EventSink, Histogram};

/// Value distributions of one bicluster search, collected only on request
/// (see [`mine_biclusters_profiled`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BiclusterHists {
    /// DFS depth (current sample-set size) at each expanded node.
    pub depth: Histogram,
    /// Remaining candidate sample count at each expanded node.
    pub candidate_set_size: Histogram,
    /// Children actually recursed into from each expanded node.
    pub fanout: Histogram,
}

/// Statistics of one per-slice bicluster search.
///
/// All fields are input-determined (DFS order is fixed), so they are
/// identical across runs and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BiclusterStats {
    /// DFS nodes (candidate sample sets) visited.
    pub nodes: u64,
    /// Candidate-visit budget consumed (0 when [`Params::max_candidates`]
    /// is unset).
    pub budget_spent: u64,
    /// Gene-set combinations produced by edge-combination enumeration.
    pub gene_combos: u64,
    /// Edge combinations dropped because an identical gene-set was already
    /// enumerated at the same node.
    pub dedup_hits: u64,
    /// Candidates recorded into the (tentative) result set.
    pub recorded: u64,
    /// Candidates rejected by the `δ^x`/`δ^y` checks at record time.
    pub rejected_delta: u64,
    /// Candidates rejected because an existing cluster subsumes them.
    pub rejected_subsumed: u64,
    /// Previously recorded clusters displaced by a larger candidate.
    pub replaced: u64,
    /// Value distributions; `None` unless requested, so the default path
    /// never pays for bucket arithmetic.
    pub hists: Option<Box<BiclusterHists>>,
}

impl BiclusterStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &BiclusterStats) {
        self.nodes += other.nodes;
        self.budget_spent += other.budget_spent;
        self.gene_combos += other.gene_combos;
        self.dedup_hits += other.dedup_hits;
        self.recorded += other.recorded;
        self.rejected_delta += other.rejected_delta;
        self.rejected_subsumed += other.rejected_subsumed;
        self.replaced += other.replaced;
        if let Some(o) = &other.hists {
            let h = self.hists.get_or_insert_with(Box::default);
            h.depth.merge(&o.depth);
            h.candidate_set_size.merge(&o.candidate_set_size);
            h.fanout.merge(&o.fanout);
        }
    }

    /// Mirrors the stats into counter increments (and histograms, when
    /// collected) on `sink`.
    pub fn publish(&self, sink: &dyn EventSink) {
        sink.counter(names::BC_NODES, self.nodes);
        sink.counter(names::BC_BUDGET_SPENT, self.budget_spent);
        sink.counter(names::BC_COMBOS, self.gene_combos);
        sink.counter(names::BC_DEDUP_HITS, self.dedup_hits);
        sink.counter(names::BC_RECORDED, self.recorded);
        sink.counter(names::BC_REJECTED_DELTA, self.rejected_delta);
        sink.counter(names::BC_REJECTED_SUBSUMED, self.rejected_subsumed);
        sink.counter(names::BC_REPLACED, self.replaced);
        if let Some(h) = &self.hists {
            sink.histogram(names::H_BC_DEPTH, &h.depth);
            sink.histogram(names::H_BC_CANDIDATES, &h.candidate_set_size);
            sink.histogram(names::H_BC_FANOUT, &h.fanout);
        }
    }
}

/// Mines all maximal biclusters of time slice `t` from its range multigraph.
///
/// Returned biclusters satisfy `|X| ≥ mx`, `|Y| ≥ my`, the `δ^x`/`δ^y`
/// range thresholds (when set), and are mutually non-contained.
pub fn mine_biclusters(m: &Matrix3, rg: &RangeGraph, params: &Params) -> Vec<Bicluster> {
    mine_biclusters_with_budget(m, rg, params).0
}

/// Like [`mine_biclusters`], but also reports whether the search was cut
/// short by [`Params::max_candidates`] (`true` = truncated: the result is
/// sound but possibly incomplete).
pub fn mine_biclusters_with_budget(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
) -> (Vec<Bicluster>, bool) {
    let (bcs, truncated, _) = mine_biclusters_observed(m, rg, params);
    (bcs, truncated)
}

/// Like [`mine_biclusters_with_budget`], but also returns search statistics
/// for the observability layer. The stats stay local to the call — no
/// locking happens on the DFS hot path.
pub fn mine_biclusters_observed(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    mine_biclusters_profiled(m, rg, params, false)
}

/// Like [`mine_biclusters_observed`], optionally collecting DFS shape
/// histograms (depth, candidate-set size, fan-out) into the returned stats.
/// Collection costs a few bucket increments per DFS node, so callers gate
/// it on [`EventSink::wants_histograms`].
pub fn mine_biclusters_profiled(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
    collect_hists: bool,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    let t = rg.time;
    let n_genes = m.n_genes();
    let n_samples = m.n_samples();
    let mut stats = BiclusterStats::default();
    if collect_hists {
        stats.hists = Some(Box::default());
    }
    let mut miner = BiMiner {
        m,
        rg,
        params,
        t,
        results: Vec::new(),
        samples: Vec::new(),
        budget: params.max_candidates,
        truncated: false,
        stats,
    };
    let all_genes = BitSet::full(n_genes);
    let order: Vec<usize> = (0..n_samples).collect();
    miner.dfs(&all_genes, &order);
    (miner.results, miner.truncated, miner.stats)
}

struct BiMiner<'a> {
    m: &'a Matrix3,
    rg: &'a RangeGraph,
    params: &'a Params,
    t: usize,
    results: Vec<Bicluster>,
    /// Current candidate sample set (ascending; DFS extends in order).
    samples: Vec<usize>,
    /// Remaining candidate-visit budget, when limited.
    budget: Option<u64>,
    truncated: bool,
    stats: BiclusterStats,
}

impl BiMiner<'_> {
    fn dfs(&mut self, genes: &BitSet, pending: &[usize]) {
        if let Some(b) = &mut self.budget {
            if *b == 0 {
                self.truncated = true;
                return;
            }
            *b -= 1;
            self.stats.budget_spent += 1;
        }
        self.stats.nodes += 1;
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.depth.record(self.samples.len() as u64);
            h.candidate_set_size.record(pending.len() as u64);
        }
        let mut children = 0u64;
        self.try_record(genes);
        // population hint for the sparse-path qualification test below
        let genes_count = genes.count();
        for (i, &sb) in pending.iter().enumerate() {
            let rest = &pending[i + 1..];
            if self.samples.is_empty() {
                children += 1;
                self.samples.push(sb);
                self.dfs(genes, rest);
                self.samples.pop();
                continue;
            }
            // Qualified edges from every existing sample to s_b.
            let mut per_sample: Vec<Vec<&RatioRange>> = Vec::with_capacity(self.samples.len());
            let mut dead_end = false;
            for &sa in &self.samples {
                let edges: Vec<&RatioRange> = self
                    .rg
                    .ranges_between(sa, sb)
                    .iter()
                    .filter(|r| {
                        genes.intersection_count_at_least_hinted(
                            &r.genes,
                            self.params.min_genes,
                            genes_count,
                        )
                    })
                    .collect();
                if edges.is_empty() {
                    dead_end = true;
                    break;
                }
                per_sample.push(edges);
            }
            if dead_end {
                continue;
            }
            // Enumerate edge combinations (one edge per existing sample),
            // intersecting gene-sets with early mx pruning; recurse per
            // distinct resulting gene-set.
            let mut seen: HashSet<Vec<u64>> = HashSet::new();
            let mut combos: Vec<BitSet> = Vec::new();
            intersect_combos(
                genes,
                &per_sample,
                self.params.min_genes,
                &mut seen,
                &mut combos,
                &mut self.stats.dedup_hits,
            );
            self.stats.gene_combos += combos.len() as u64;
            for new_genes in combos {
                children += 1;
                self.samples.push(sb);
                self.dfs(&new_genes, rest);
                self.samples.pop();
            }
        }
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.fanout.record(children);
        }
    }

    fn try_record(&mut self, genes: &BitSet) {
        if self.samples.len() < self.params.min_samples {
            return;
        }
        if genes.count() < self.params.min_genes {
            return;
        }
        if !self.deltas_ok(genes) {
            self.stats.rejected_delta += 1;
            return;
        }
        let candidate = Bicluster::new(genes.clone(), self.samples.clone(), self.t);
        match insert_maximal_bicluster_counted(&mut self.results, candidate) {
            InsertOutcome::Subsumed => self.stats.rejected_subsumed += 1,
            InsertOutcome::Inserted { displaced } => {
                self.stats.recorded += 1;
                self.stats.replaced += displaced as u64;
            }
        }
    }

    /// `δ^x`: within each sample column, gene values range at most `δ^x`;
    /// `δ^y`: within each gene row, sample values range at most `δ^y`.
    fn deltas_ok(&self, genes: &BitSet) -> bool {
        let p = self.params;
        if let Some(dx) = p.delta_gene {
            for &s in &self.samples {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for g in genes.iter() {
                    let v = self.m.get(g, s, self.t);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo > dx {
                    return false;
                }
            }
        }
        if let Some(dy) = p.delta_sample {
            for g in genes.iter() {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &s in &self.samples {
                    let v = self.m.get(g, s, self.t);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo > dy {
                    return false;
                }
            }
        }
        true
    }
}

/// Depth-first enumeration of one-edge-per-sample combinations, accumulating
/// the gene-set intersection and pruning as soon as it drops below `mx`.
/// `dedup_hits` counts combinations dropped because their gene-set was
/// already produced by an earlier edge choice at the same node.
fn intersect_combos(
    acc: &BitSet,
    per_sample: &[Vec<&RatioRange>],
    mx: usize,
    seen: &mut HashSet<Vec<u64>>,
    out: &mut Vec<BitSet>,
    dedup_hits: &mut u64,
) {
    match per_sample.split_first() {
        None => {
            if seen.insert(acc.as_blocks().to_vec()) {
                out.push(acc.clone());
            } else {
                *dedup_hits += 1;
            }
        }
        Some((edges, rest)) => {
            for r in edges {
                if !acc.intersection_count_at_least(&r.genes, mx) {
                    continue;
                }
                let mut next = acc.clone();
                next.intersect_with(&r.genes);
                if next.count() >= mx {
                    intersect_combos(&next, rest, mx, seen, out, dedup_hits);
                }
            }
        }
    }
}

/// What [`insert_maximal_bicluster_counted`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The candidate was contained in an existing cluster and dropped.
    Subsumed,
    /// The candidate was inserted, displacing `displaced` existing clusters
    /// it subsumes.
    Inserted {
        /// Existing clusters removed because the candidate contains them.
        displaced: usize,
    },
}

/// Inserts `candidate` into `results` keeping only maximal biclusters:
/// skipped when contained in an existing cluster; existing clusters contained
/// in it are removed.
pub fn insert_maximal_bicluster(results: &mut Vec<Bicluster>, candidate: Bicluster) {
    insert_maximal_bicluster_counted(results, candidate);
}

/// Like [`insert_maximal_bicluster`], reporting what happened (used by the
/// observability layer to count maximality rejections and replacements).
pub fn insert_maximal_bicluster_counted(
    results: &mut Vec<Bicluster>,
    candidate: Bicluster,
) -> InsertOutcome {
    if results.iter().any(|c| candidate.is_subcluster_of(c)) {
        return InsertOutcome::Subsumed;
    }
    let before = results.len();
    results.retain(|c| !c.is_subcluster_of(&candidate));
    let displaced = before - results.len();
    results.push(candidate);
    InsertOutcome::Inserted { displaced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rangegraph::build_range_graph;
    use crate::testdata::paper_table1;

    fn params(eps: f64, mx: usize, my: usize) -> Params {
        Params::builder()
            .epsilon(eps)
            .min_genes(mx)
            .min_samples(my)
            .min_times(2)
            .build()
            .unwrap()
    }

    fn mine(m: &Matrix3, t: usize, p: &Params) -> Vec<Bicluster> {
        let rg = build_range_graph(m, t, p);
        mine_biclusters(m, &rg, p)
    }

    fn sorted_view(bcs: &[Bicluster]) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut v: Vec<(Vec<usize>, Vec<usize>)> = bcs
            .iter()
            .map(|b| (b.genes.to_vec(), b.samples.clone()))
            .collect();
        v.sort();
        v
    }

    /// Paper §4.2 worked example: at t0 with mx=my=3, ε=0.01 the miner must
    /// find exactly C1, C2, C3.
    #[test]
    fn paper_example_t0_three_biclusters() {
        let m = paper_table1();
        let got = sorted_view(&mine(&m, 0, &params(0.01, 3, 3)));
        let want = vec![
            (vec![0, 2, 6, 9], vec![1, 4, 6]), // C2
            (vec![0, 7, 9], vec![1, 2, 4, 5]), // C3
            (vec![1, 4, 8], vec![0, 1, 4, 6]), // C1
        ];
        assert_eq!(got, want);
    }

    /// With my=2 the paper finds the extra cluster C4 = {g0,g2,g6,g7,g9} x
    /// {s1,s4}, which is not subsumed in 2D (its gene-set is strictly larger
    /// than C2's and C3's).
    #[test]
    fn paper_example_my2_reveals_c4() {
        let m = paper_table1();
        let got = sorted_view(&mine(&m, 0, &params(0.01, 3, 2)));
        assert!(
            got.contains(&(vec![0, 2, 6, 7, 9], vec![1, 4])),
            "C4 missing: {got:?}"
        );
        // C1..C3 still present
        assert!(got.contains(&(vec![1, 4, 8], vec![0, 1, 4, 6])));
        assert!(got.contains(&(vec![0, 2, 6, 9], vec![1, 4, 6])));
        assert!(got.contains(&(vec![0, 7, 9], vec![1, 2, 4, 5])));
    }

    /// Biclusters at t1 are the same index sets as t0 (the paper: "the
    /// clusters are identical").
    #[test]
    fn paper_example_t1_matches_t0() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        assert_eq!(sorted_view(&mine(&m, 0, &p)), sorted_view(&mine(&m, 1, &p)));
    }

    /// δ^x bounds the value spread across genes within a fixed column
    /// (paper §2 condition 3a: cells sharing sample and time). C1's widest
    /// column is s0 with 9.0 − 3.0 = 6.0, C2's is 5.0 − 1.0 = 4.0, C3's is
    /// 8.0 − 1.0 = 7.0; δ^x = 6 keeps C1 and C2, kills C3.
    ///
    /// (The paper's Table-1 narrative claims δ^x = 0 kills only C1, which
    /// contradicts its own formal condition — C2's columns also span 4.0.
    /// We follow the formal definition; see DESIGN.md.)
    #[test]
    fn delta_x_prunes_wide_columns() {
        let m = paper_table1();
        let mk = |dx: f64| {
            Params::builder()
                .epsilon(0.01)
                .min_genes(3)
                .min_samples(3)
                .min_times(2)
                .delta_gene(dx)
                .build()
                .unwrap()
        };
        let got = sorted_view(&mine(&m, 0, &mk(6.0)));
        assert_eq!(
            got,
            vec![
                (vec![0, 2, 6, 9], vec![1, 4, 6]),
                (vec![1, 4, 8], vec![0, 1, 4, 6]),
            ]
        );
        // δ^x = 0 demands identical values per column: nothing survives.
        assert!(mine(&m, 0, &mk(0.0)).is_empty());
    }

    /// δ^y bounds the value range along each gene row: C1's g4 row spans
    /// 9.0 − 3.0 = 6.0, so δ^y = 1 kills C1 but keeps the constant-row
    /// clusters.
    #[test]
    fn delta_y_kills_wide_rows() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .delta_sample(1.0)
            .build()
            .unwrap();
        let got = sorted_view(&mine(&m, 0, &p));
        assert!(!got.contains(&(vec![1, 4, 8], vec![0, 1, 4, 6])));
        assert!(got.contains(&(vec![0, 2, 6, 9], vec![1, 4, 6])));
    }

    #[test]
    fn results_are_mutually_maximal() {
        let m = paper_table1();
        let bcs = mine(&m, 0, &params(0.01, 3, 2));
        for (i, a) in bcs.iter().enumerate() {
            for (j, b) in bcs.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.is_subcluster_of(b),
                        "cluster {i} ⊆ cluster {j}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_genes_above_all_clusters_yields_nothing() {
        let m = paper_table1();
        assert!(mine(&m, 0, &params(0.01, 6, 3)).is_empty());
    }

    #[test]
    fn min_samples_above_all_clusters_yields_nothing() {
        let m = paper_table1();
        assert!(mine(&m, 0, &params(0.01, 3, 5)).is_empty());
    }

    #[test]
    fn insert_maximal_drops_subsumed() {
        let mk = |genes: &[usize], samples: &[usize]| {
            Bicluster::new(
                BitSet::from_indices(10, genes.iter().copied()),
                samples.to_vec(),
                0,
            )
        };
        let mut v = Vec::new();
        insert_maximal_bicluster(&mut v, mk(&[1, 2], &[0, 1]));
        insert_maximal_bicluster(&mut v, mk(&[1, 2, 3], &[0, 1])); // subsumes
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].genes.to_vec(), vec![1, 2, 3]);
        insert_maximal_bicluster(&mut v, mk(&[1, 2], &[0])); // subsumed
        assert_eq!(v.len(), 1);
        insert_maximal_bicluster(&mut v, mk(&[4, 5], &[2, 3])); // unrelated
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn observed_stats_are_deterministic_and_consistent() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        let rg = build_range_graph(&m, 0, &p);
        let (bcs, truncated, stats) = mine_biclusters_observed(&m, &rg, &p);
        assert!(!truncated);
        assert_eq!(bcs.len(), 3);
        assert!(stats.nodes > 0);
        assert_eq!(stats.budget_spent, 0, "no budget configured");
        // recorded − replaced = surviving clusters
        assert_eq!(stats.recorded - stats.replaced, bcs.len() as u64);
        let (_, _, again) = mine_biclusters_observed(&m, &rg, &p);
        assert_eq!(stats, again);
    }

    #[test]
    fn observed_budget_spent_tracks_truncation() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(5)
            .build()
            .unwrap();
        let rg = build_range_graph(&m, 0, &p);
        let (_, truncated, stats) = mine_biclusters_observed(&m, &rg, &p);
        assert!(truncated);
        assert_eq!(stats.budget_spent, 5);
        assert_eq!(stats.nodes, 5);
    }

    #[test]
    fn profiled_hists_describe_the_dfs() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        let rg = build_range_graph(&m, 0, &p);
        let (bcs, _, stats) = mine_biclusters_profiled(&m, &rg, &p, true);
        let h = stats.hists.as_ref().expect("collected");
        // one depth/candidate/fanout sample per DFS node
        assert_eq!(h.depth.count(), stats.nodes);
        assert_eq!(h.candidate_set_size.count(), stats.nodes);
        assert_eq!(h.fanout.count(), stats.nodes);
        // the root sees the full candidate set and depth 0
        assert_eq!(h.candidate_set_size.max(), m.n_samples() as u64);
        assert_eq!(h.depth.min(), 0);
        // fanout sums to nodes - 1 (every non-root node has one parent edge)
        assert_eq!(h.fanout.sum(), u128::from(stats.nodes - 1));
        // hist collection must not change the mined clusters or scalars
        let (plain_bcs, _, plain) = mine_biclusters_observed(&m, &rg, &p);
        assert_eq!(bcs, plain_bcs);
        assert_eq!(plain.nodes, stats.nodes);
        assert!(plain.hists.is_none());
        // deterministic across repeated profiled runs
        let (_, _, again) = mine_biclusters_profiled(&m, &rg, &p, true);
        assert_eq!(stats, again);
    }

    #[test]
    fn insert_counted_reports_outcomes() {
        let mk = |genes: &[usize], samples: &[usize]| {
            Bicluster::new(
                BitSet::from_indices(10, genes.iter().copied()),
                samples.to_vec(),
                0,
            )
        };
        let mut v = Vec::new();
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2], &[0, 1])),
            InsertOutcome::Inserted { displaced: 0 }
        );
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2, 3], &[0, 1])),
            InsertOutcome::Inserted { displaced: 1 }
        );
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2], &[0])),
            InsertOutcome::Subsumed
        );
    }

    /// A uniform matrix is one big bicluster covering everything.
    #[test]
    fn uniform_matrix_single_cluster() {
        let mut m = Matrix3::zeros(4, 3, 1);
        m.map_in_place(|_| 2.0);
        let p = Params::builder()
            .epsilon(0.0)
            .min_genes(2)
            .min_samples(2)
            .min_times(1)
            .build()
            .unwrap();
        let bcs = mine(&m, 0, &p);
        assert_eq!(bcs.len(), 1);
        assert_eq!(bcs[0].genes.count(), 4);
        assert_eq!(bcs[0].samples, vec![0, 1, 2]);
    }
}
