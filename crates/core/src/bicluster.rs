//! BICLUSTER: mining maximal biclusters from the range multigraph
//! (paper §4.2, Figure 3).
//!
//! The miner performs a depth-first set-enumeration over sample columns.
//! The candidate `C = X × Y` starts as `(all genes) × ∅`; extending `Y` by a
//! new column `s_b` requires choosing, for **every** `s_a ∈ Y`, one range
//! edge `(s_a, s_b)` of the multigraph whose gene-set keeps
//! `|X ∩ ⋂ G(R)| ≥ mx`. That makes every recorded `Y` a clique of the range
//! multigraph constrained by the gene threshold — exactly the paper's
//! "constrained maximal clique" search.
//!
//! Per the pseudo-code, the `δ^x`/`δ^y`/`my` checks gate only the
//! *recording* of a candidate (lines 2–6), never its expansion; `mx` prunes
//! expansion because gene-sets shrink monotonically along a DFS path.

use crate::cluster::Bicluster;
use crate::fault::{fail_point_panic, isolate, RunCtrl};
use crate::params::Params;
use crate::range::RatioRange;
use crate::rangegraph::RangeGraph;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;
use tricluster_obs::{names, timeline, EventSink, Histogram};

/// Value distributions of one bicluster search, collected only on request
/// (see [`mine_biclusters_profiled`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BiclusterHists {
    /// DFS depth (current sample-set size) at each expanded node.
    pub depth: Histogram,
    /// Remaining candidate sample count at each expanded node.
    pub candidate_set_size: Histogram,
    /// Children actually recursed into from each expanded node.
    pub fanout: Histogram,
}

/// Statistics of one per-slice bicluster search.
///
/// All fields are input-determined (DFS order is fixed), so they are
/// identical across runs and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BiclusterStats {
    /// DFS nodes (candidate sample sets) visited.
    pub nodes: u64,
    /// Candidate-visit budget consumed (0 when [`Params::max_candidates`]
    /// is unset).
    pub budget_spent: u64,
    /// Gene-set combinations produced by edge-combination enumeration.
    pub gene_combos: u64,
    /// Edge combinations dropped because an identical gene-set was already
    /// enumerated at the same node.
    pub dedup_hits: u64,
    /// Candidates recorded into the (tentative) result set.
    pub recorded: u64,
    /// Candidates rejected by the `δ^x`/`δ^y` checks at record time.
    pub rejected_delta: u64,
    /// Candidates rejected because an existing cluster subsumes them.
    pub rejected_subsumed: u64,
    /// Previously recorded clusters displaced by a larger candidate.
    pub replaced: u64,
    /// Branch-local survivors dropped at the cross-branch merge because a
    /// cluster from an earlier branch subsumes them (see
    /// [`mine_biclusters_workers`]).
    pub merge_subsumed: u64,
    /// Value distributions; `None` unless requested, so the default path
    /// never pays for bucket arithmetic.
    pub hists: Option<Box<BiclusterHists>>,
}

impl BiclusterStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &BiclusterStats) {
        self.nodes += other.nodes;
        self.budget_spent += other.budget_spent;
        self.gene_combos += other.gene_combos;
        self.dedup_hits += other.dedup_hits;
        self.recorded += other.recorded;
        self.rejected_delta += other.rejected_delta;
        self.rejected_subsumed += other.rejected_subsumed;
        self.replaced += other.replaced;
        self.merge_subsumed += other.merge_subsumed;
        if let Some(o) = &other.hists {
            let h = self.hists.get_or_insert_with(Box::default);
            h.depth.merge(&o.depth);
            h.candidate_set_size.merge(&o.candidate_set_size);
            h.fanout.merge(&o.fanout);
        }
    }

    /// Mirrors the stats into counter increments (and histograms, when
    /// collected) on `sink`.
    pub fn publish(&self, sink: &dyn EventSink) {
        sink.counter(names::BC_NODES, self.nodes);
        sink.counter(names::BC_BUDGET_SPENT, self.budget_spent);
        sink.counter(names::BC_COMBOS, self.gene_combos);
        sink.counter(names::BC_DEDUP_HITS, self.dedup_hits);
        sink.counter(names::BC_RECORDED, self.recorded);
        sink.counter(names::BC_REJECTED_DELTA, self.rejected_delta);
        sink.counter(names::BC_REJECTED_SUBSUMED, self.rejected_subsumed);
        sink.counter(names::BC_REPLACED, self.replaced);
        sink.counter(names::BC_MERGE_SUBSUMED, self.merge_subsumed);
        if let Some(h) = &self.hists {
            sink.histogram(names::H_BC_DEPTH, &h.depth);
            sink.histogram(names::H_BC_CANDIDATES, &h.candidate_set_size);
            sink.histogram(names::H_BC_FANOUT, &h.fanout);
        }
    }
}

/// Mines all maximal biclusters of time slice `t` from its range multigraph.
///
/// Returned biclusters satisfy `|X| ≥ mx`, `|Y| ≥ my`, the `δ^x`/`δ^y`
/// range thresholds (when set), and are mutually non-contained.
pub fn mine_biclusters(m: &Matrix3, rg: &RangeGraph, params: &Params) -> Vec<Bicluster> {
    mine_biclusters_with_budget(m, rg, params).0
}

/// Like [`mine_biclusters`], but also reports whether the search was cut
/// short by [`Params::max_candidates`] (`true` = truncated: the result is
/// sound but possibly incomplete).
pub fn mine_biclusters_with_budget(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
) -> (Vec<Bicluster>, bool) {
    let (bcs, truncated, _) = mine_biclusters_observed(m, rg, params);
    (bcs, truncated)
}

/// Like [`mine_biclusters_with_budget`], but also returns search statistics
/// for the observability layer. The stats stay local to the call — no
/// locking happens on the DFS hot path.
pub fn mine_biclusters_observed(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    mine_biclusters_profiled(m, rg, params, false)
}

/// Like [`mine_biclusters_observed`], optionally collecting DFS shape
/// histograms (depth, candidate-set size, fan-out) into the returned stats.
/// Collection costs a few bucket increments per DFS node, so callers gate
/// it on [`EventSink::wants_histograms`].
pub fn mine_biclusters_profiled(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
    collect_hists: bool,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    mine_biclusters_workers(m, rg, params, collect_hists, 1)
}

/// Everything one top-level branch produced, keyed by its seed sample.
struct BranchOutput {
    branch: usize,
    results: MaximalStore,
    truncated: bool,
    /// Budget consumed inside the branch (for sequential budget threading).
    spent: u64,
    stats: BiclusterStats,
}

/// Mines the branch rooted at sample `order[branch]` into a local store.
#[allow(clippy::too_many_arguments)]
fn run_branch<'a>(
    m: &'a Matrix3,
    rg: &'a RangeGraph,
    params: &'a Params,
    collect_hists: bool,
    all_genes: &BitSet,
    order: &[usize],
    branch: usize,
    budget: Option<u64>,
    ctrl: &'a RunCtrl,
) -> BranchOutput {
    fail_point_panic("core.bicluster.branch");
    let mut stats = BiclusterStats::default();
    if collect_hists {
        stats.hists = Some(Box::default());
    }
    let mut miner = BranchMiner {
        m,
        rg,
        params,
        t: rg.time,
        results: MaximalStore::new(),
        samples: vec![order[branch]],
        budget,
        truncated: false,
        stats,
        scratch: DfsScratch::default(),
        ctrl,
    };
    miner.dfs(all_genes, &order[branch + 1..]);
    let spent = miner.stats.budget_spent;
    BranchOutput {
        branch,
        results: miner.results,
        truncated: miner.truncated,
        spent,
        stats: miner.stats,
    }
}

/// Like [`mine_biclusters_profiled`], distributing the top-level sample-seed
/// branches of the set-enumeration tree over up to `workers` threads.
///
/// Every thread count — including 1 — runs the *same* algorithm: each branch
/// mines into a branch-local [`MaximalStore`], and the branch stores are
/// merged on the calling thread in ascending branch order with a final
/// cross-branch maximality pass. Parallelism therefore only changes
/// scheduling, never the traversal, so every statistic (and the result
/// vector, order included) is identical for all `workers` values.
///
/// Cross-branch maximality leans on a structural property: the branch seeded
/// at sample `i` only yields sample sets whose minimum is `i`, so a cluster
/// can only be subsumed by one from an *earlier* branch (`samples ⊆` forces
/// `min ≥`). Merge drops such clusters (counted as
/// [`BiclusterStats::merge_subsumed`]); displacement of an earlier branch's
/// cluster by a later branch is impossible.
///
/// When [`Params::max_candidates`] is set, the visit budget is global across
/// the whole DFS, so branches run sequentially and thread the remaining
/// budget in branch order — deterministic truncation, identical to the
/// pre-parallel implementation.
pub fn mine_biclusters_workers(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
    collect_hists: bool,
    workers: usize,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    mine_biclusters_ctrl(m, rg, params, collect_hists, workers, &RunCtrl::unbounded())
}

/// Like [`mine_biclusters_workers`], under the run control of `ctrl`: the
/// deadline is polled at every DFS node, and — when `ctrl` collects faults —
/// a panic inside one top-level branch downgrades to a
/// [`WorkerFailure`](crate::WorkerFailure) costing only that branch's
/// clusters. The surviving branches still merge in ascending seed order, so
/// the output stays deterministic given the same set of survivors.
pub fn mine_biclusters_ctrl(
    m: &Matrix3,
    rg: &RangeGraph,
    params: &Params,
    collect_hists: bool,
    workers: usize,
    ctrl: &RunCtrl,
) -> (Vec<Bicluster>, bool, BiclusterStats) {
    let n_genes = m.n_genes();
    let n_samples = m.n_samples();
    let mut stats = BiclusterStats::default();
    if collect_hists {
        stats.hists = Some(Box::default());
    }
    let mut truncated = false;

    // Root node of the enumeration tree (empty sample set). Recording can
    // never fire here (`min_samples ≥ 1`), so only accounting happens.
    let mut budget = params.max_candidates;
    if let Some(b) = &mut budget {
        if *b == 0 {
            return (Vec::new(), true, stats);
        }
        *b -= 1;
        stats.budget_spent += 1;
    }
    stats.nodes += 1;
    if let Some(h) = stats.hists.as_deref_mut() {
        h.depth.record(0);
        h.candidate_set_size.record(n_samples as u64);
    }

    let all_genes = BitSet::full(n_genes);
    let order: Vec<usize> = (0..n_samples).collect();
    if let Some(p) = &ctrl.progress {
        p.add_branches_total(n_samples as u64);
    }
    let outputs: Vec<BranchOutput> = if budget.is_some() || workers <= 1 || n_samples <= 1 {
        let mut outs = Vec::with_capacity(n_samples);
        for branch in 0..n_samples {
            if ctrl.token.deadline_exceeded() {
                break;
            }
            let tl_branch = timeline::span(names::T_BC_BRANCH);
            let out = isolate(
                &ctrl.faults,
                "bicluster_branch",
                || format!("t={} branch={}", rg.time, branch),
                || {
                    run_branch(
                        m,
                        rg,
                        params,
                        collect_hists,
                        &all_genes,
                        &order,
                        branch,
                        budget,
                        ctrl,
                    )
                },
            );
            drop(tl_branch);
            if let Some(p) = &ctrl.progress {
                p.branch_done();
            }
            // A failed branch consumed an unknowable slice of the budget;
            // charge nothing so the surviving branches keep their shares.
            let Some(out) = out else { continue };
            if let Some(b) = &mut budget {
                *b -= out.spent;
            }
            if let Some(p) = &ctrl.progress {
                p.add_budget_spent(out.spent);
            }
            outs.push(out);
        }
        outs
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<BranchOutput>> = (0..n_samples).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.min(n_samples))
                .map(|_| {
                    scope.spawn(|| {
                        let _tl = ctrl.timeline.as_ref().map(|t| t.attach("branch"));
                        let mut outs = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_samples {
                                break;
                            }
                            if ctrl.token.deadline_exceeded() {
                                break;
                            }
                            let tl_branch = timeline::span(names::T_BC_BRANCH);
                            let out = isolate(
                                &ctrl.faults,
                                "bicluster_branch",
                                || format!("t={} branch={}", rg.time, i),
                                || {
                                    run_branch(
                                        m,
                                        rg,
                                        params,
                                        collect_hists,
                                        &all_genes,
                                        &order,
                                        i,
                                        None,
                                        ctrl,
                                    )
                                },
                            );
                            drop(tl_branch);
                            if let Some(p) = &ctrl.progress {
                                p.branch_done();
                            }
                            if let Some(out) = out {
                                outs.push(out);
                            }
                        }
                        outs
                    })
                })
                .collect();
            for h in handles {
                for out in h.join().expect("bicluster worker panicked") {
                    let b = out.branch;
                    slots[b] = Some(out);
                }
            }
        });
        // Skipped (post-deadline) and failed branches left their slot empty.
        slots.into_iter().flatten().collect()
    };

    // Root fan-out: one child per top-level sample, recursed unconditionally.
    if let Some(h) = stats.hists.as_deref_mut() {
        h.fanout.record(n_samples as u64);
    }

    // Deterministic merge: absorb branches in ascending seed order and fold
    // their survivors through a global maximality store.
    let mut store = MaximalStore::new();
    for out in outputs {
        truncated |= out.truncated;
        stats.absorb(&out.stats);
        for bc in out.results.into_vec() {
            match store.insert(bc) {
                InsertOutcome::Subsumed => stats.merge_subsumed += 1,
                InsertOutcome::Inserted { displaced } => {
                    debug_assert_eq!(displaced, 0, "later branches cannot subsume earlier ones");
                    stats.replaced += displaced as u64;
                }
            }
        }
    }
    (store.into_vec(), truncated, stats)
}

/// Reusable per-branch buffers for the DFS hot path. Each use-site fills the
/// slice it needs before reading, so sharing them across recursion levels is
/// safe: by the time a child (or the next extension) reuses a buffer, the
/// parent no longer needs its contents.
#[derive(Default)]
struct DfsScratch<'a> {
    /// Qualified edges per current sample, rebuilt for each extension; only
    /// the first `samples.len()` entries are live at any moment.
    per_sample: Vec<Vec<&'a RatioRange>>,
    /// One intersection accumulator per combination depth, written in-place
    /// by [`BitSet::intersect_into`] — no per-extension clones.
    levels: Vec<BitSet>,
    /// Gene-sets already produced at the current (node, extension) step.
    seen: HashSet<BitSet>,
}

struct BranchMiner<'a> {
    m: &'a Matrix3,
    rg: &'a RangeGraph,
    params: &'a Params,
    t: usize,
    results: MaximalStore,
    /// Current candidate sample set (ascending; DFS extends in order).
    samples: Vec<usize>,
    /// Remaining candidate-visit budget, when limited.
    budget: Option<u64>,
    truncated: bool,
    stats: BiclusterStats,
    scratch: DfsScratch<'a>,
    /// Run control: only the deadline is polled here (per DFS node).
    ctrl: &'a RunCtrl,
}

impl<'a> BranchMiner<'a> {
    fn dfs(&mut self, genes: &BitSet, pending: &[usize]) {
        if self.ctrl.token.deadline_exceeded() {
            self.truncated = true;
            return;
        }
        if let Some(b) = &mut self.budget {
            if *b == 0 {
                self.truncated = true;
                return;
            }
            *b -= 1;
            self.stats.budget_spent += 1;
        }
        self.stats.nodes += 1;
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.depth.record(self.samples.len() as u64);
            h.candidate_set_size.record(pending.len() as u64);
        }
        let mut children = 0u64;
        self.try_record(genes);
        // population hint for the sparse-path qualification test below
        let genes_count = genes.count();
        for (i, &sb) in pending.iter().enumerate() {
            let rest = &pending[i + 1..];
            let depth = self.samples.len();
            let scratch = &mut self.scratch;
            while scratch.per_sample.len() < depth {
                scratch.per_sample.push(Vec::new());
            }
            while scratch.levels.len() < depth {
                scratch.levels.push(BitSet::new(0));
            }
            // Qualified edges from every existing sample to s_b; the
            // count-early-exit prunes extensions before any gene-set is
            // materialized.
            let mut dead_end = false;
            for (k, &sa) in self.samples.iter().enumerate() {
                let edges = &mut scratch.per_sample[k];
                edges.clear();
                for r in self.rg.ranges_between(sa, sb) {
                    if genes.intersection_count_at_least_hinted(
                        &r.genes,
                        self.params.min_genes,
                        genes_count,
                    ) {
                        edges.push(r);
                    }
                }
                if edges.is_empty() {
                    dead_end = true;
                    break;
                }
            }
            if dead_end {
                continue;
            }
            // Enumerate edge combinations (one edge per existing sample),
            // intersecting gene-sets in-place with mx pruning; recurse per
            // distinct resulting gene-set.
            scratch.seen.clear();
            let mut combos: Vec<BitSet> = Vec::new();
            intersect_combos(
                genes,
                &scratch.per_sample[..depth],
                &mut scratch.levels[..depth],
                self.params.min_genes,
                &mut scratch.seen,
                &mut combos,
                &mut self.stats.dedup_hits,
            );
            self.stats.gene_combos += combos.len() as u64;
            for new_genes in combos {
                children += 1;
                self.samples.push(sb);
                self.dfs(&new_genes, rest);
                self.samples.pop();
            }
        }
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.fanout.record(children);
        }
    }

    fn try_record(&mut self, genes: &BitSet) {
        if self.samples.len() < self.params.min_samples {
            return;
        }
        if genes.count() < self.params.min_genes {
            return;
        }
        if !self.deltas_ok(genes) {
            self.stats.rejected_delta += 1;
            return;
        }
        let candidate = Bicluster::new(genes.clone(), self.samples.clone(), self.t);
        match self.results.insert(candidate) {
            InsertOutcome::Subsumed => self.stats.rejected_subsumed += 1,
            InsertOutcome::Inserted { displaced } => {
                self.stats.recorded += 1;
                self.stats.replaced += displaced as u64;
                if let Some(p) = &self.ctrl.progress {
                    p.candidate_recorded();
                }
            }
        }
    }

    /// `δ^x`: within each sample column, gene values range at most `δ^x`;
    /// `δ^y`: within each gene row, sample values range at most `δ^y`.
    fn deltas_ok(&self, genes: &BitSet) -> bool {
        let p = self.params;
        if let Some(dx) = p.delta_gene {
            for &s in &self.samples {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for g in genes.iter() {
                    let v = self.m.get(g, s, self.t);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo > dx {
                    return false;
                }
            }
        }
        if let Some(dy) = p.delta_sample {
            for g in genes.iter() {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &s in &self.samples {
                    let v = self.m.get(g, s, self.t);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo > dy {
                    return false;
                }
            }
        }
        true
    }
}

/// Depth-first enumeration of one-edge-per-sample combinations, accumulating
/// the gene-set intersection and pruning as soon as it drops below `mx`.
/// `dedup_hits` counts combinations dropped because their gene-set was
/// already produced by an earlier edge choice at the same node.
///
/// The accumulator at each combination depth lives in `levels` (one slot per
/// remaining sample), written in place by [`BitSet::intersect_into`] — the
/// only allocations are the cloned gene-sets of *surviving* distinct combos.
fn intersect_combos(
    acc: &BitSet,
    per_sample: &[Vec<&RatioRange>],
    levels: &mut [BitSet],
    mx: usize,
    seen: &mut HashSet<BitSet>,
    out: &mut Vec<BitSet>,
    dedup_hits: &mut u64,
) {
    match per_sample.split_first() {
        None => {
            if seen.contains(acc) {
                *dedup_hits += 1;
            } else {
                let owned = acc.clone();
                seen.insert(owned.clone());
                out.push(owned);
            }
        }
        Some((edges, rest)) => {
            let (level, rest_levels) = levels
                .split_first_mut()
                .expect("one scratch level per remaining sample");
            for r in edges {
                if level.intersect_into(acc, &r.genes) >= mx {
                    intersect_combos(level, rest, rest_levels, mx, seen, out, dedup_hits);
                }
            }
        }
    }
}

/// What [`insert_maximal_bicluster_counted`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The candidate was contained in an existing cluster and dropped.
    Subsumed,
    /// The candidate was inserted, displacing `displaced` existing clusters
    /// it subsumes.
    Inserted {
        /// Existing clusters removed because the candidate contains them.
        displaced: usize,
    },
}

/// Inserts `candidate` into `results` keeping only maximal biclusters:
/// skipped when contained in an existing cluster; existing clusters contained
/// in it are removed.
pub fn insert_maximal_bicluster(results: &mut Vec<Bicluster>, candidate: Bicluster) {
    insert_maximal_bicluster_counted(results, candidate);
}

/// Like [`insert_maximal_bicluster`], reporting what happened (used by the
/// observability layer to count maximality rejections and replacements).
///
/// This is the O(results) reference implementation; the miner's hot path
/// uses [`MaximalStore`], which indexes clusters by size signature.
pub fn insert_maximal_bicluster_counted(
    results: &mut Vec<Bicluster>,
    candidate: Bicluster,
) -> InsertOutcome {
    if results.iter().any(|c| candidate.is_subcluster_of(c)) {
        return InsertOutcome::Subsumed;
    }
    let before = results.len();
    results.retain(|c| !c.is_subcluster_of(&candidate));
    let displaced = before - results.len();
    results.push(candidate);
    InsertOutcome::Inserted { displaced }
}

/// A set of mutually non-contained biclusters with a size-bucketed signature
/// index.
///
/// Containment (`genes ⊆ ∧ samples ⊆`) implies `|genes| ≤ ∧ |samples| ≤`,
/// so clusters are bucketed by `(|genes|, |samples|)`: a candidate can only
/// be subsumed by buckets ≥ in both dimensions and can only displace buckets
/// ≤ in both. Instead of the reference implementation's O(results) scan per
/// insert, only those candidate buckets are probed — near-constant for the
/// size-diverse stores the miner produces.
///
/// Insertion order is preserved: [`MaximalStore::into_vec`] yields survivors
/// exactly as [`insert_maximal_bicluster_counted`] would have left them in a
/// plain vector (displaced entries removed in place, survivors in first-
/// insert order).
#[derive(Debug, Clone, Default)]
pub struct MaximalStore {
    /// Insert-ordered slots; displaced clusters become `None`.
    slots: Vec<Option<Bicluster>>,
    /// `(gene count, sample count)` -> indices of live slots with that size.
    buckets: std::collections::BTreeMap<(usize, usize), Vec<usize>>,
    len: usize,
}

impl MaximalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live clusters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the store holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `candidate` keeping only maximal clusters; same contract and
    /// outcome reporting as [`insert_maximal_bicluster_counted`].
    pub fn insert(&mut self, candidate: Bicluster) -> InsertOutcome {
        let key = (candidate.genes.count(), candidate.samples.len());
        // Subsumption: only clusters at least as large in both dimensions
        // can contain the candidate. (The equal-size bucket is probed here
        // first, so an exact duplicate reports Subsumed, like the reference.)
        for (&(_, sc), idxs) in self.buckets.range((key.0, 0)..) {
            if sc < key.1 {
                continue;
            }
            for &i in idxs {
                let c = self.slots[i].as_ref().expect("bucket points at live slot");
                if candidate.is_subcluster_of(c) {
                    return InsertOutcome::Subsumed;
                }
            }
        }
        // Displacement: only clusters at most as large in both dimensions
        // can be contained in the candidate.
        let mut doomed: Vec<(usize, (usize, usize))> = Vec::new();
        for (&(gc, sc), idxs) in self.buckets.range(..=(key.0, key.1)) {
            if sc > key.1 {
                continue;
            }
            for &i in idxs {
                let c = self.slots[i].as_ref().expect("bucket points at live slot");
                if c.is_subcluster_of(&candidate) {
                    doomed.push((i, (gc, sc)));
                }
            }
        }
        let displaced = doomed.len();
        for (i, bkey) in doomed {
            self.slots[i] = None;
            let bucket = self
                .buckets
                .get_mut(&bkey)
                .expect("doomed slot was bucketed");
            bucket.retain(|&x| x != i);
            if bucket.is_empty() {
                self.buckets.remove(&bkey);
            }
        }
        let idx = self.slots.len();
        self.slots.push(Some(candidate));
        self.buckets.entry(key).or_default().push(idx);
        self.len = self.len - displaced + 1;
        InsertOutcome::Inserted { displaced }
    }

    /// Consumes the store, yielding survivors in insertion order.
    pub fn into_vec(self) -> Vec<Bicluster> {
        self.slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rangegraph::build_range_graph;
    use crate::testdata::paper_table1;

    fn params(eps: f64, mx: usize, my: usize) -> Params {
        Params::builder()
            .epsilon(eps)
            .min_genes(mx)
            .min_samples(my)
            .min_times(2)
            .build()
            .unwrap()
    }

    fn mine(m: &Matrix3, t: usize, p: &Params) -> Vec<Bicluster> {
        let rg = build_range_graph(m, t, p);
        mine_biclusters(m, &rg, p)
    }

    fn sorted_view(bcs: &[Bicluster]) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut v: Vec<(Vec<usize>, Vec<usize>)> = bcs
            .iter()
            .map(|b| (b.genes.to_vec(), b.samples.clone()))
            .collect();
        v.sort();
        v
    }

    /// Paper §4.2 worked example: at t0 with mx=my=3, ε=0.01 the miner must
    /// find exactly C1, C2, C3.
    #[test]
    fn paper_example_t0_three_biclusters() {
        let m = paper_table1();
        let got = sorted_view(&mine(&m, 0, &params(0.01, 3, 3)));
        let want = vec![
            (vec![0, 2, 6, 9], vec![1, 4, 6]), // C2
            (vec![0, 7, 9], vec![1, 2, 4, 5]), // C3
            (vec![1, 4, 8], vec![0, 1, 4, 6]), // C1
        ];
        assert_eq!(got, want);
    }

    /// With my=2 the paper finds the extra cluster C4 = {g0,g2,g6,g7,g9} x
    /// {s1,s4}, which is not subsumed in 2D (its gene-set is strictly larger
    /// than C2's and C3's).
    #[test]
    fn paper_example_my2_reveals_c4() {
        let m = paper_table1();
        let got = sorted_view(&mine(&m, 0, &params(0.01, 3, 2)));
        assert!(
            got.contains(&(vec![0, 2, 6, 7, 9], vec![1, 4])),
            "C4 missing: {got:?}"
        );
        // C1..C3 still present
        assert!(got.contains(&(vec![1, 4, 8], vec![0, 1, 4, 6])));
        assert!(got.contains(&(vec![0, 2, 6, 9], vec![1, 4, 6])));
        assert!(got.contains(&(vec![0, 7, 9], vec![1, 2, 4, 5])));
    }

    /// Biclusters at t1 are the same index sets as t0 (the paper: "the
    /// clusters are identical").
    #[test]
    fn paper_example_t1_matches_t0() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        assert_eq!(sorted_view(&mine(&m, 0, &p)), sorted_view(&mine(&m, 1, &p)));
    }

    /// δ^x bounds the value spread across genes within a fixed column
    /// (paper §2 condition 3a: cells sharing sample and time). C1's widest
    /// column is s0 with 9.0 − 3.0 = 6.0, C2's is 5.0 − 1.0 = 4.0, C3's is
    /// 8.0 − 1.0 = 7.0; δ^x = 6 keeps C1 and C2, kills C3.
    ///
    /// (The paper's Table-1 narrative claims δ^x = 0 kills only C1, which
    /// contradicts its own formal condition — C2's columns also span 4.0.
    /// We follow the formal definition; see DESIGN.md.)
    #[test]
    fn delta_x_prunes_wide_columns() {
        let m = paper_table1();
        let mk = |dx: f64| {
            Params::builder()
                .epsilon(0.01)
                .min_genes(3)
                .min_samples(3)
                .min_times(2)
                .delta_gene(dx)
                .build()
                .unwrap()
        };
        let got = sorted_view(&mine(&m, 0, &mk(6.0)));
        assert_eq!(
            got,
            vec![
                (vec![0, 2, 6, 9], vec![1, 4, 6]),
                (vec![1, 4, 8], vec![0, 1, 4, 6]),
            ]
        );
        // δ^x = 0 demands identical values per column: nothing survives.
        assert!(mine(&m, 0, &mk(0.0)).is_empty());
    }

    /// δ^y bounds the value range along each gene row: C1's g4 row spans
    /// 9.0 − 3.0 = 6.0, so δ^y = 1 kills C1 but keeps the constant-row
    /// clusters.
    #[test]
    fn delta_y_kills_wide_rows() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .delta_sample(1.0)
            .build()
            .unwrap();
        let got = sorted_view(&mine(&m, 0, &p));
        assert!(!got.contains(&(vec![1, 4, 8], vec![0, 1, 4, 6])));
        assert!(got.contains(&(vec![0, 2, 6, 9], vec![1, 4, 6])));
    }

    #[test]
    fn results_are_mutually_maximal() {
        let m = paper_table1();
        let bcs = mine(&m, 0, &params(0.01, 3, 2));
        for (i, a) in bcs.iter().enumerate() {
            for (j, b) in bcs.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.is_subcluster_of(b),
                        "cluster {i} ⊆ cluster {j}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_genes_above_all_clusters_yields_nothing() {
        let m = paper_table1();
        assert!(mine(&m, 0, &params(0.01, 6, 3)).is_empty());
    }

    #[test]
    fn min_samples_above_all_clusters_yields_nothing() {
        let m = paper_table1();
        assert!(mine(&m, 0, &params(0.01, 3, 5)).is_empty());
    }

    #[test]
    fn insert_maximal_drops_subsumed() {
        let mk = |genes: &[usize], samples: &[usize]| {
            Bicluster::new(
                BitSet::from_indices(10, genes.iter().copied()),
                samples.to_vec(),
                0,
            )
        };
        let mut v = Vec::new();
        insert_maximal_bicluster(&mut v, mk(&[1, 2], &[0, 1]));
        insert_maximal_bicluster(&mut v, mk(&[1, 2, 3], &[0, 1])); // subsumes
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].genes.to_vec(), vec![1, 2, 3]);
        insert_maximal_bicluster(&mut v, mk(&[1, 2], &[0])); // subsumed
        assert_eq!(v.len(), 1);
        insert_maximal_bicluster(&mut v, mk(&[4, 5], &[2, 3])); // unrelated
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn observed_stats_are_deterministic_and_consistent() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        let rg = build_range_graph(&m, 0, &p);
        let (bcs, truncated, stats) = mine_biclusters_observed(&m, &rg, &p);
        assert!(!truncated);
        assert_eq!(bcs.len(), 3);
        assert!(stats.nodes > 0);
        assert_eq!(stats.budget_spent, 0, "no budget configured");
        // recorded − replaced − merge-dropped = surviving clusters
        assert_eq!(
            stats.recorded - stats.replaced - stats.merge_subsumed,
            bcs.len() as u64
        );
        let (_, _, again) = mine_biclusters_observed(&m, &rg, &p);
        assert_eq!(stats, again);
    }

    #[test]
    fn worker_counts_mine_identical_results() {
        let m = paper_table1();
        // my=2 exercises cross-branch subsumption (C4 lives in branch s1)
        for p in [params(0.01, 3, 3), params(0.01, 3, 2)] {
            let rg = build_range_graph(&m, 0, &p);
            let (bcs1, tr1, st1) = mine_biclusters_workers(&m, &rg, &p, true, 1);
            for workers in [2usize, 4, 8] {
                let (bcs, tr, st) = mine_biclusters_workers(&m, &rg, &p, true, workers);
                assert_eq!(bcs, bcs1, "clusters differ at workers={workers}");
                assert_eq!(tr, tr1);
                assert_eq!(st, st1, "stats differ at workers={workers}");
            }
            // result-vector order itself is thread-invariant (not just the set)
            let (plain, _, st_plain) = mine_biclusters_observed(&m, &rg, &p);
            assert_eq!(plain, bcs1);
            assert_eq!(
                st_plain.recorded - st_plain.replaced - st_plain.merge_subsumed,
                plain.len() as u64
            );
        }
    }

    #[test]
    fn maximal_store_matches_reference_implementation() {
        // Feed both stores the same pseudo-random candidate stream and check
        // outcome-by-outcome and final-sequence agreement.
        let mk = |genes: &[usize], samples: &[usize]| {
            Bicluster::new(
                BitSet::from_indices(12, genes.iter().copied()),
                samples.to_vec(),
                0,
            )
        };
        let mut state = 0x9e3779b97f4a7c15u64; // deterministic xorshift
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut reference: Vec<Bicluster> = Vec::new();
        let mut store = MaximalStore::new();
        for _ in 0..300 {
            let gbits = next();
            let sbits = next();
            let genes: Vec<usize> = (0..12).filter(|i| gbits >> i & 1 == 1).collect();
            let samples: Vec<usize> = (0..6).filter(|i| sbits >> i & 1 == 1).collect();
            if genes.is_empty() || samples.is_empty() {
                continue;
            }
            let cand = mk(&genes, &samples);
            let want = insert_maximal_bicluster_counted(&mut reference, cand.clone());
            let got = store.insert(cand);
            assert_eq!(got, want);
            assert_eq!(store.len(), reference.len());
        }
        assert_eq!(store.into_vec(), reference, "survivor order must match");
    }

    #[test]
    fn observed_budget_spent_tracks_truncation() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .max_candidates(5)
            .build()
            .unwrap();
        let rg = build_range_graph(&m, 0, &p);
        let (_, truncated, stats) = mine_biclusters_observed(&m, &rg, &p);
        assert!(truncated);
        assert_eq!(stats.budget_spent, 5);
        assert_eq!(stats.nodes, 5);
    }

    #[test]
    fn profiled_hists_describe_the_dfs() {
        let m = paper_table1();
        let p = params(0.01, 3, 3);
        let rg = build_range_graph(&m, 0, &p);
        let (bcs, _, stats) = mine_biclusters_profiled(&m, &rg, &p, true);
        let h = stats.hists.as_ref().expect("collected");
        // one depth/candidate/fanout sample per DFS node
        assert_eq!(h.depth.count(), stats.nodes);
        assert_eq!(h.candidate_set_size.count(), stats.nodes);
        assert_eq!(h.fanout.count(), stats.nodes);
        // the root sees the full candidate set and depth 0
        assert_eq!(h.candidate_set_size.max(), m.n_samples() as u64);
        assert_eq!(h.depth.min(), 0);
        // fanout sums to nodes - 1 (every non-root node has one parent edge)
        assert_eq!(h.fanout.sum(), u128::from(stats.nodes - 1));
        // hist collection must not change the mined clusters or scalars
        let (plain_bcs, _, plain) = mine_biclusters_observed(&m, &rg, &p);
        assert_eq!(bcs, plain_bcs);
        assert_eq!(plain.nodes, stats.nodes);
        assert!(plain.hists.is_none());
        // deterministic across repeated profiled runs
        let (_, _, again) = mine_biclusters_profiled(&m, &rg, &p, true);
        assert_eq!(stats, again);
    }

    #[test]
    fn insert_counted_reports_outcomes() {
        let mk = |genes: &[usize], samples: &[usize]| {
            Bicluster::new(
                BitSet::from_indices(10, genes.iter().copied()),
                samples.to_vec(),
                0,
            )
        };
        let mut v = Vec::new();
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2], &[0, 1])),
            InsertOutcome::Inserted { displaced: 0 }
        );
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2, 3], &[0, 1])),
            InsertOutcome::Inserted { displaced: 1 }
        );
        assert_eq!(
            insert_maximal_bicluster_counted(&mut v, mk(&[1, 2], &[0])),
            InsertOutcome::Subsumed
        );
    }

    /// A uniform matrix is one big bicluster covering everything.
    #[test]
    fn uniform_matrix_single_cluster() {
        let mut m = Matrix3::zeros(4, 3, 1);
        m.map_in_place(|_| 2.0);
        let p = Params::builder()
            .epsilon(0.0)
            .min_genes(2)
            .min_samples(2)
            .min_times(1)
            .build()
            .unwrap();
        let bcs = mine(&m, 0, &p);
        assert_eq!(bcs.len(), 1);
        assert_eq!(bcs[0].genes.count(), 4);
        assert_eq!(bcs[0].samples, vec![0, 1, 2]);
    }
}
