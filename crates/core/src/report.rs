//! Human- and machine-readable reporting of mined clusters.
//!
//! A [`MiningResult`](crate::MiningResult) holds index sets; this module
//! renders them with the input's [`Labels`], classifies each cluster
//! (paper §2 types), and serializes the result set in two stable text
//! formats:
//!
//! * [`write_text`] — a labeled report for terminals/logs,
//! * [`write_csv`] — one row per cluster with pipe-joined member lists,
//!   round-trippable via [`parse_csv`] (for pipelines that post-process
//!   clusters outside Rust).

use crate::classify::{classify, ClusterType};
use crate::cluster::Tricluster;
use crate::metrics::cluster_metrics;
use std::io::{self, BufRead, Write};
use tricluster_bitset::BitSet;
use tricluster_matrix::{Labels, Matrix3};

/// Writes a labeled, classified report of `clusters` to `w`.
pub fn write_text<W: Write>(
    w: &mut W,
    m: &Matrix3,
    clusters: &[Tricluster],
    labels: &Labels,
    tolerance: f64,
) -> io::Result<()> {
    writeln!(w, "{} clusters", clusters.len())?;
    for (i, c) in clusters.iter().enumerate() {
        let (x, y, z) = c.shape();
        let kind = classify(m, c, tolerance);
        writeln!(
            w,
            "cluster {i} [{kind}]: {x} genes x {y} samples x {z} times"
        )?;
        let genes: Vec<String> = c.genes.iter().map(|g| labels.gene(g)).collect();
        let samples: Vec<String> = c.samples.iter().map(|&s| labels.sample(s)).collect();
        let times: Vec<String> = c.times.iter().map(|&t| labels.time(t)).collect();
        writeln!(w, "  genes:   {}", genes.join(" "))?;
        writeln!(w, "  samples: {}", samples.join(" "))?;
        writeln!(w, "  times:   {}", times.join(" "))?;
    }
    writeln!(w)?;
    writeln!(w, "{}", cluster_metrics(m, clusters))?;
    Ok(())
}

/// CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "cluster,n_genes,n_samples,n_times,type,genes,samples,times";

/// Writes one CSV row per cluster. Member lists are pipe-joined indices
/// (stable regardless of labels, so files can be parsed back without the
/// original label set).
pub fn write_csv<W: Write>(
    w: &mut W,
    m: &Matrix3,
    clusters: &[Tricluster],
    tolerance: f64,
) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for (i, c) in clusters.iter().enumerate() {
        let (x, y, z) = c.shape();
        let join = |it: &mut dyn Iterator<Item = usize>| -> String {
            it.map(|v| v.to_string()).collect::<Vec<_>>().join("|")
        };
        writeln!(
            w,
            "{i},{x},{y},{z},{},{},{},{}",
            classify(m, c, tolerance),
            join(&mut c.genes.iter()),
            join(&mut c.samples.iter().copied()),
            join(&mut c.times.iter().copied()),
        )?;
    }
    Ok(())
}

/// Errors from [`parse_csv`].
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem, with the 1-based line number.
    Malformed {
        /// Offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses a cluster CSV produced by [`write_csv`]. `n_genes` is the gene
/// universe for the reconstructed bitsets.
pub fn parse_csv<R: BufRead>(r: R, n_genes: usize) -> Result<Vec<Tricluster>, ParseError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if line.trim() != CSV_HEADER {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: format!("expected header {CSV_HEADER:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(ParseError::Malformed {
                line: lineno,
                reason: format!("expected 8 fields, found {}", fields.len()),
            });
        }
        let parse_list = |s: &str, what: &str| -> Result<Vec<usize>, ParseError> {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            s.split('|')
                .map(|tok| {
                    tok.parse::<usize>().map_err(|_| ParseError::Malformed {
                        line: lineno,
                        reason: format!("bad {what} index {tok:?}"),
                    })
                })
                .collect()
        };
        let genes = parse_list(fields[5], "gene")?;
        if let Some(&max) = genes.iter().max() {
            if max >= n_genes {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: format!("gene index {max} outside universe {n_genes}"),
                });
            }
        }
        let samples = parse_list(fields[6], "sample")?;
        let times = parse_list(fields[7], "time")?;
        out.push(Tricluster::new(
            BitSet::from_indices(n_genes, genes),
            samples,
            times,
        ));
    }
    Ok(out)
}

/// Summary line for one cluster (shape + type), used by the CLI.
pub fn summary(m: &Matrix3, c: &Tricluster, tolerance: f64) -> String {
    let (x, y, z) = c.shape();
    format!(
        "{x} genes x {y} samples x {z} times [{}]",
        classify(m, c, tolerance)
    )
}

/// Re-export for convenience in report consumers.
pub use crate::classify::ClusterType as ReportedType;

#[allow(unused)]
fn _assert_types(t: ClusterType) -> ReportedType {
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_table1;
    use crate::{mine, Params};

    fn mined() -> (Matrix3, Vec<Tricluster>) {
        let m = paper_table1();
        let params = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .build()
            .unwrap();
        let result = mine(&m, &params).unwrap();
        (m, result.triclusters)
    }

    #[test]
    fn text_report_contains_labels_and_metrics() {
        let (m, clusters) = mined();
        let labels = Labels::default_for(10, 7, 2);
        let mut buf = Vec::new();
        write_text(&mut buf, &m, &clusters, &labels, 1e-9).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("3 clusters"));
        assert!(s.contains("g1 g4 g8"));
        assert!(s.contains("[scaling]"));
        assert!(s.contains("[sample-constant]"));
        assert!(s.contains("Coverage"));
    }

    #[test]
    fn csv_roundtrip() {
        let (m, clusters) = mined();
        let mut buf = Vec::new();
        write_csv(&mut buf, &m, &clusters, 1e-9).unwrap();
        let parsed = parse_csv(buf.as_slice(), 10).unwrap();
        assert_eq!(parsed, clusters);
    }

    #[test]
    fn csv_has_one_row_per_cluster_plus_header() {
        let (m, clusters) = mined();
        let mut buf = Vec::new();
        write_csv(&mut buf, &m, &clusters, 1e-9).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), clusters.len() + 1);
        assert!(s.starts_with(CSV_HEADER));
    }

    #[test]
    fn parse_rejects_wrong_header() {
        let e = parse_csv("nope\n".as_bytes(), 10).unwrap_err();
        assert!(e.to_string().contains("expected header"));
    }

    #[test]
    fn parse_rejects_wrong_field_count() {
        let text = format!("{CSV_HEADER}\n0,1,1\n");
        let e = parse_csv(text.as_bytes(), 10).unwrap_err();
        assert!(e.to_string().contains("expected 8 fields"));
    }

    #[test]
    fn parse_rejects_bad_index() {
        let text = format!("{CSV_HEADER}\n0,1,1,1,scaling,x,0,0\n");
        let e = parse_csv(text.as_bytes(), 10).unwrap_err();
        assert!(e.to_string().contains("bad gene index"));
    }

    #[test]
    fn parse_rejects_out_of_universe_gene() {
        let text = format!("{CSV_HEADER}\n0,1,1,1,scaling,99,0,0\n");
        let e = parse_csv(text.as_bytes(), 10).unwrap_err();
        assert!(e.to_string().contains("outside universe"));
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = format!("{CSV_HEADER}\n\n0,1,1,1,scaling,3,0,1\n\n");
        let parsed = parse_csv(text.as_bytes(), 10).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].genes.to_vec(), vec![3]);
    }

    #[test]
    fn summary_format() {
        let (m, clusters) = mined();
        let s = summary(&m, &clusters[0], 1e-9);
        assert!(s.contains("genes x"));
        assert!(s.contains('['));
    }
}
