//! Cluster-type classification (paper §2, cases (a)–(e)).
//!
//! Different `δ` threshold choices make TriCluster mine different cluster
//! *types*; conversely, a mined cluster can be classified after the fact by
//! measuring its value spreads:
//!
//! * **Constant** — identical values everywhere (case a: `δx=δy=δz=0`).
//! * **ApproximatelyConstant** — near-identical values (case b).
//! * **GeneConstant / SampleConstant / TimeConstant** — (case c/d family)
//!   values (approximately) constant along the named dimension's fibers
//!   while scaling freely along the others. E.g. *GeneConstant*: within any
//!   fixed (sample, time) column all genes agree — the cluster's variation
//!   lives in the sample/time dimensions.
//! * **Scaling** — full multiplicative behavior in all dimensions (case e).
//!
//! A cluster mined from `exp(D)` (Lemma 2) is a *shifting* cluster of `D`;
//! that classification lives with [`crate::shift`], not here, because it
//! depends on which matrix the values came from.

use crate::cluster::Tricluster;
use tricluster_matrix::Matrix3;

/// The cluster types of paper §2. Ordered from most to least constrained;
/// [`classify`] returns the most specific type that applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterType {
    /// All values identical (within `tolerance`).
    Constant,
    /// Values constant within each (sample, time) column — genes agree.
    GeneConstant,
    /// Values constant within each (gene, time) row — samples agree.
    SampleConstant,
    /// Values constant within each (gene, sample) fiber — times agree.
    TimeConstant,
    /// General scaling cluster (coherent ratios, unconstrained spreads).
    Scaling,
}

impl std::fmt::Display for ClusterType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ClusterType::Constant => "constant",
            ClusterType::GeneConstant => "gene-constant",
            ClusterType::SampleConstant => "sample-constant",
            ClusterType::TimeConstant => "time-constant",
            ClusterType::Scaling => "scaling",
        })
    }
}

/// Per-dimension value spreads of a cluster: the largest `max − min` over
/// all 1-D fibers along each dimension. These are exactly the quantities
/// the `δ^x/δ^y/δ^z` thresholds bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spreads {
    /// Largest spread across genes within a fixed (sample, time) column.
    pub gene: f64,
    /// Largest spread across samples within a fixed (gene, time) row.
    pub sample: f64,
    /// Largest spread across times within a fixed (gene, sample) fiber.
    pub time: f64,
}

/// Measures the per-dimension spreads of `c` over `m`.
pub fn spreads(m: &Matrix3, c: &Tricluster) -> Spreads {
    let mut gene = 0.0f64;
    for &s in &c.samples {
        for &t in &c.times {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for g in c.genes.iter() {
                let v = m.get(g, s, t);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            gene = gene.max(hi - lo);
        }
    }
    let mut sample = 0.0f64;
    for g in c.genes.iter() {
        for &t in &c.times {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &s in &c.samples {
                let v = m.get(g, s, t);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            sample = sample.max(hi - lo);
        }
    }
    let mut time = 0.0f64;
    for g in c.genes.iter() {
        for &s in &c.samples {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &t in &c.times {
                let v = m.get(g, s, t);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            time = time.max(hi - lo);
        }
    }
    Spreads { gene, sample, time }
}

/// Classifies `c` by its spreads, treating a spread `≤ tolerance` as zero.
///
/// When exactly one dimension's spread exceeds the tolerance the cluster is
/// *not* constant along the two others — e.g. only the time spread nonzero
/// means each time slice of the cluster is a constant block that scales
/// over time, which this function reports as [`ClusterType::TimeConstant`]'s
/// *complement* family: constant along genes **and** samples. To keep the
/// taxonomy simple we report the dimension(s) of agreement:
///
/// * all spreads ≤ tol → `Constant`
/// * gene spread ≤ tol (others free) → `GeneConstant`
/// * sample spread ≤ tol → `SampleConstant`
/// * time spread ≤ tol → `TimeConstant`
/// * otherwise → `Scaling`
///
/// Ties (two dimensions within tolerance) pick the first in gene → sample →
/// time order, matching the paper's case ordering.
pub fn classify(m: &Matrix3, c: &Tricluster, tolerance: f64) -> ClusterType {
    let s = spreads(m, c);
    let g0 = s.gene <= tolerance;
    let s0 = s.sample <= tolerance;
    let t0 = s.time <= tolerance;
    match (g0, s0, t0) {
        (true, true, true) => ClusterType::Constant,
        (true, _, _) => ClusterType::GeneConstant,
        (_, true, _) => ClusterType::SampleConstant,
        (_, _, true) => ClusterType::TimeConstant,
        _ => ClusterType::Scaling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_table1;
    use tricluster_bitset::BitSet;

    fn tri(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(10, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    #[test]
    fn constant_block() {
        let mut m = Matrix3::zeros(3, 3, 2);
        m.map_in_place(|_| 4.0);
        let c = tri(&[0, 1, 2], &[0, 1, 2], &[0, 1]);
        assert_eq!(classify(&m, &c, 0.0), ClusterType::Constant);
        let s = spreads(&m, &c);
        assert_eq!((s.gene, s.sample, s.time), (0.0, 0.0, 0.0));
    }

    #[test]
    fn tolerance_absorbs_jitter() {
        let mut m = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                for t in 0..2 {
                    // constant 4.0 with ±0.01 jitter in every dimension
                    let jitter = [0.0, 0.01, -0.01, 0.0][(g * 2 + s + t) % 4];
                    m.set(g, s, t, 4.0 + jitter);
                }
            }
        }
        let c = tri(&[0, 1], &[0, 1], &[0, 1]);
        assert_eq!(classify(&m, &c, 0.03), ClusterType::Constant);
        assert_eq!(classify(&m, &c, 0.001), ClusterType::Scaling);
    }

    /// Paper case (c): every gene agrees within a column but the cluster
    /// scales across samples and times.
    #[test]
    fn gene_constant_block() {
        let mut m = Matrix3::zeros(3, 2, 2);
        for g in 0..3 {
            for s in 0..2 {
                for t in 0..2 {
                    // value depends only on (s, t), not on g
                    m.set(g, s, t, (s + 1) as f64 * (t + 1) as f64);
                }
            }
        }
        let c = tri(&[0, 1, 2], &[0, 1], &[0, 1]);
        assert_eq!(classify(&m, &c, 1e-12), ClusterType::GeneConstant);
    }

    #[test]
    fn sample_and_time_constant_blocks() {
        let mut m = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                for t in 0..2 {
                    m.set(g, s, t, (g + 1) as f64 * (t + 1) as f64); // no s
                }
            }
        }
        let c = tri(&[0, 1], &[0, 1], &[0, 1]);
        assert_eq!(classify(&m, &c, 1e-12), ClusterType::SampleConstant);

        let mut m2 = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                for t in 0..2 {
                    m2.set(g, s, t, (g + 1) as f64 * (s + 1) as f64); // no t
                }
            }
        }
        assert_eq!(classify(&m2, &c, 1e-12), ClusterType::TimeConstant);
    }

    /// The paper's clusters: C1 scales everywhere; C2/C3 hold per-gene
    /// constants within each slice (sample-constant) but scale over time.
    #[test]
    fn paper_clusters_classification() {
        let m = paper_table1();
        let c1 = tri(&[1, 4, 8], &[0, 1, 4, 6], &[0, 1]);
        assert_eq!(classify(&m, &c1, 1e-9), ClusterType::Scaling);
        let c2 = tri(&[0, 2, 6, 9], &[1, 4, 6], &[0, 1]);
        assert_eq!(classify(&m, &c2, 1e-9), ClusterType::SampleConstant);
        let c3 = tri(&[0, 7, 9], &[1, 2, 4, 5], &[0, 1]);
        assert_eq!(classify(&m, &c3, 1e-9), ClusterType::SampleConstant);
    }

    #[test]
    fn spreads_match_hand_computation() {
        let m = paper_table1();
        // C1's widest column is s0: 9.0 − 3.0; widest row is g4: 9.0 − 3.0
        // at t0 but 10.8 − 3.6 at t1; widest time fiber is g4/s0: 10.8 − 9.0
        let c1 = tri(&[1, 4, 8], &[0, 1, 4, 6], &[0, 1]);
        let s = spreads(&m, &c1);
        assert!(
            (s.gene - 7.2).abs() < 1e-9,
            "t1 column s0: 10.8-3.6 = 7.2, got {}",
            s.gene
        );
        assert!(
            (s.sample - 7.2).abs() < 1e-9,
            "t1 row g4: 10.8-3.6, got {}",
            s.sample
        );
        assert!((s.time - 1.8).abs() < 1e-9, "{}", s.time);
    }

    #[test]
    fn display_names() {
        assert_eq!(ClusterType::Constant.to_string(), "constant");
        assert_eq!(ClusterType::Scaling.to_string(), "scaling");
        assert_eq!(ClusterType::GeneConstant.to_string(), "gene-constant");
    }
}
