//! Cluster types: [`Bicluster`] (one time slice) and [`Tricluster`].

use tricluster_bitset::BitSet;

/// A maximal bicluster `X × Y` mined from one time slice.
///
/// `genes` is a bitset over the gene universe; `samples` is a sorted list of
/// sample column indices. The time slice the bicluster came from is carried
/// alongside so the tricluster phase can index the right slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bicluster {
    /// Gene set `X`.
    pub genes: BitSet,
    /// Sample set `Y`, sorted ascending.
    pub samples: Vec<usize>,
    /// The time slice this bicluster belongs to.
    pub time: usize,
}

impl Bicluster {
    /// Creates a bicluster, sorting the samples.
    pub fn new(genes: BitSet, mut samples: Vec<usize>, time: usize) -> Self {
        samples.sort_unstable();
        samples.dedup();
        Bicluster {
            genes,
            samples,
            time,
        }
    }

    /// `(|X|, |Y|)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.genes.count(), self.samples.len())
    }

    /// Number of cells `|X| · |Y|`.
    pub fn span_size(&self) -> usize {
        self.genes.count() * self.samples.len()
    }

    /// `true` iff `self ⊆ other` (gene-set and sample-set containment,
    /// same time slice).
    pub fn is_subcluster_of(&self, other: &Bicluster) -> bool {
        self.time == other.time
            && self.genes.is_subset(&other.genes)
            && is_sorted_subset(&self.samples, &other.samples)
    }
}

impl std::fmt::Display for Bicluster {
    /// Compact form: `{g1,g4,g8} x {s0,s1} @ t0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.genes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "g{g}")?;
        }
        write!(f, "}} x {{")?;
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{s}")?;
        }
        write!(f, "}} @ t{}", self.time)
    }
}

/// A maximal tricluster `X × Y × Z`.
///
/// `genes` is a bitset over the gene universe; `samples` and `times` are
/// sorted index lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tricluster {
    /// Gene set `X`.
    pub genes: BitSet,
    /// Sample set `Y`, sorted ascending.
    pub samples: Vec<usize>,
    /// Time set `Z`, sorted ascending.
    pub times: Vec<usize>,
}

impl Tricluster {
    /// Creates a tricluster, sorting samples and times.
    pub fn new(genes: BitSet, mut samples: Vec<usize>, mut times: Vec<usize>) -> Self {
        samples.sort_unstable();
        samples.dedup();
        times.sort_unstable();
        times.dedup();
        Tricluster {
            genes,
            samples,
            times,
        }
    }

    /// `(|X|, |Y|, |Z|)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.genes.count(), self.samples.len(), self.times.len())
    }

    /// Number of cells `|X| · |Y| · |Z|` (the paper's span size `|L_C|`).
    pub fn span_size(&self) -> usize {
        self.genes.count() * self.samples.len() * self.times.len()
    }

    /// `true` iff the cell `(g, s, t)` lies in the cluster.
    pub fn contains_cell(&self, g: usize, s: usize, t: usize) -> bool {
        self.genes.contains(g)
            && self.samples.binary_search(&s).is_ok()
            && self.times.binary_search(&t).is_ok()
    }

    /// `true` iff `self ⊆ other` per the paper's definition
    /// (`X ⊆ X'`, `Y ⊆ Y'`, `Z ⊆ Z'`).
    pub fn is_subcluster_of(&self, other: &Tricluster) -> bool {
        self.genes.is_subset(&other.genes)
            && is_sorted_subset(&self.samples, &other.samples)
            && is_sorted_subset(&self.times, &other.times)
    }

    /// Iterates over all `(gene, sample, time)` cells of the cluster.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.genes.iter().flat_map(move |g| {
            self.samples
                .iter()
                .flat_map(move |&s| self.times.iter().map(move |&t| (g, s, t)))
        })
    }

    /// The bounding cluster `(X∪X') × (Y∪Y') × (Z∪Z')` (the paper's `A + B`).
    pub fn bounding(&self, other: &Tricluster) -> Tricluster {
        let genes = self.genes.union(&other.genes);
        let samples = sorted_union(&self.samples, &other.samples);
        let times = sorted_union(&self.times, &other.times);
        Tricluster {
            genes,
            samples,
            times,
        }
    }

    /// Per-dimension intersection sizes `(|X∩X'|, |Y∩Y'|, |Z∩Z'|)`.
    pub fn intersection_shape(&self, other: &Tricluster) -> (usize, usize, usize) {
        (
            self.genes.intersection_count(&other.genes),
            sorted_intersection_count(&self.samples, &other.samples),
            sorted_intersection_count(&self.times, &other.times),
        )
    }
}

impl std::fmt::Display for Tricluster {
    /// Compact form: `{g1,g4,g8} x {s0,s1} x {t0,t1}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.genes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "g{g}")?;
        }
        write!(f, "}} x {{")?;
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{s}")?;
        }
        write!(f, "}} x {{")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "t{t}")?;
        }
        write!(f, "}}")
    }
}

/// `true` iff sorted slice `a` is a subset of sorted slice `b`.
pub(crate) fn is_sorted_subset(a: &[usize], b: &[usize]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Size of the intersection of two sorted slices.
pub(crate) fn sorted_intersection_count(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Union of two sorted slices, sorted and deduplicated.
pub(crate) fn sorted_union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two sorted slices.
pub(crate) fn sorted_intersection(a: &[usize], b: &[usize]) -> Vec<usize> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genes(n: usize, which: &[usize]) -> BitSet {
        BitSet::from_indices(n, which.iter().copied())
    }

    #[test]
    fn bicluster_new_sorts_and_dedups() {
        let b = Bicluster::new(genes(5, &[0, 1]), vec![3, 1, 3], 0);
        assert_eq!(b.samples, vec![1, 3]);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.span_size(), 4);
    }

    #[test]
    fn bicluster_subset_requires_same_time() {
        let small = Bicluster::new(genes(5, &[1]), vec![2], 0);
        let big = Bicluster::new(genes(5, &[1, 2]), vec![2, 3], 0);
        let big_t1 = Bicluster::new(genes(5, &[1, 2]), vec![2, 3], 1);
        assert!(small.is_subcluster_of(&big));
        assert!(!big.is_subcluster_of(&small));
        assert!(!small.is_subcluster_of(&big_t1));
        assert!(small.is_subcluster_of(&small), "reflexive");
    }

    #[test]
    fn tricluster_shape_and_span() {
        let c = Tricluster::new(genes(10, &[0, 2, 4]), vec![1, 3], vec![0, 1]);
        assert_eq!(c.shape(), (3, 2, 2));
        assert_eq!(c.span_size(), 12);
        assert_eq!(c.cells().count(), 12);
    }

    #[test]
    fn tricluster_contains_cell() {
        let c = Tricluster::new(genes(10, &[0, 2]), vec![1], vec![5]);
        assert!(c.contains_cell(0, 1, 5));
        assert!(c.contains_cell(2, 1, 5));
        assert!(!c.contains_cell(1, 1, 5));
        assert!(!c.contains_cell(0, 2, 5));
        assert!(!c.contains_cell(0, 1, 4));
    }

    #[test]
    fn tricluster_subset() {
        let sub = Tricluster::new(genes(10, &[1, 2]), vec![0], vec![0, 1]);
        let sup = Tricluster::new(genes(10, &[1, 2, 3]), vec![0, 5], vec![0, 1, 2]);
        assert!(sub.is_subcluster_of(&sup));
        assert!(!sup.is_subcluster_of(&sub));
        let disjoint = Tricluster::new(genes(10, &[9]), vec![0], vec![0]);
        assert!(!disjoint.is_subcluster_of(&sup));
    }

    #[test]
    fn bounding_cluster_unions_each_dim() {
        let a = Tricluster::new(genes(10, &[1, 2]), vec![0, 1], vec![0]);
        let b = Tricluster::new(genes(10, &[2, 3]), vec![1, 2], vec![1]);
        let ab = a.bounding(&b);
        assert_eq!(ab.genes.to_vec(), vec![1, 2, 3]);
        assert_eq!(ab.samples, vec![0, 1, 2]);
        assert_eq!(ab.times, vec![0, 1]);
    }

    #[test]
    fn intersection_shape() {
        let a = Tricluster::new(genes(10, &[1, 2, 3]), vec![0, 1], vec![0, 2]);
        let b = Tricluster::new(genes(10, &[2, 3, 4]), vec![1, 5], vec![2]);
        assert_eq!(a.intersection_shape(&b), (2, 1, 1));
    }

    #[test]
    fn sorted_helpers() {
        assert!(is_sorted_subset(&[], &[1, 2]));
        assert!(is_sorted_subset(&[2], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[0], &[1, 2]));
        assert!(!is_sorted_subset(&[1, 4], &[1, 2, 3]));
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(sorted_intersection(&[1, 3, 5], &[3, 4, 5]), vec![3, 5]);
    }

    #[test]
    fn display_forms() {
        let b = Bicluster::new(genes(10, &[1, 4, 8]), vec![0, 1], 3);
        assert_eq!(b.to_string(), "{g1,g4,g8} x {s0,s1} @ t3");
        let c = Tricluster::new(genes(10, &[0, 9]), vec![2], vec![0, 1]);
        assert_eq!(c.to_string(), "{g0,g9} x {s2} x {t0,t1}");
    }

    #[test]
    fn cells_enumerates_cartesian_product() {
        let c = Tricluster::new(genes(5, &[0, 1]), vec![2], vec![0, 3]);
        let cells: Vec<_> = c.cells().collect();
        assert_eq!(cells, vec![(0, 2, 0), (0, 2, 3), (1, 2, 0), (1, 2, 3)]);
    }
}
