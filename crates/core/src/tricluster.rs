//! TRICLUSTER: mining maximal triclusters from per-slice biclusters
//! (paper §4.3, Figure 4).
//!
//! The search mirrors [BICLUSTER](crate::bicluster) one level up: a
//! depth-first set-enumeration over *time points*, where extending the
//! candidate `C = X × Y × Z` by a time `t_b` intersects `X` and `Y` with a
//! bicluster mined at `t_b`, subject to the cardinality thresholds and the
//! [temporal coherence](crate::coherence) between `t_b` and every slice
//! already in `Z`.
//!
//! As in the bicluster phase, `δ`/`mz` checks gate recording only, and the
//! result set keeps only maximal clusters.

use crate::cluster::{sorted_intersection, Bicluster, Tricluster};
use crate::coherence::slice_pair_coherent;
use crate::fault::RunCtrl;
use crate::params::Params;
use std::collections::HashSet;
use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;
use tricluster_obs::{names, EventSink, Histogram};

/// Value distributions of one tricluster search, collected only on request
/// (see [`mine_triclusters_profiled`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriclusterHists {
    /// DFS depth (current time-set size) at each expanded node.
    pub depth: Histogram,
    /// Remaining candidate time count at each expanded node.
    pub candidate_set_size: Histogram,
    /// Children actually recursed into from each expanded node.
    pub fanout: Histogram,
}

/// Statistics of one tricluster search. Input-determined: identical across
/// runs and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriclusterStats {
    /// DFS nodes (candidate time sets) visited.
    pub nodes: u64,
    /// Candidate-visit budget consumed (0 when [`Params::max_candidates`]
    /// is unset).
    pub budget_spent: u64,
    /// Bicluster-intersection extensions attempted.
    pub extensions: u64,
    /// Extensions rejected because the intersection fell below `mx`/`my`.
    pub rejected_small: u64,
    /// Slice-pair temporal-coherence checks performed.
    pub coherence_checks: u64,
    /// Extensions rejected by temporal coherence.
    pub rejected_incoherent: u64,
    /// Extensions dropped because an identical `(genes, samples)` outcome
    /// was already expanded at the same node.
    pub dedup_hits: u64,
    /// Candidates recorded into the (tentative) result set.
    pub recorded: u64,
    /// Candidates rejected because an existing cluster subsumes them.
    pub rejected_subsumed: u64,
    /// Previously recorded clusters displaced by a larger candidate.
    pub replaced: u64,
    /// Value distributions; `None` unless requested, so the default path
    /// never pays for bucket arithmetic.
    pub hists: Option<Box<TriclusterHists>>,
}

impl TriclusterStats {
    /// Mirrors the stats into counter increments (and histograms, when
    /// collected) on `sink`.
    pub fn publish(&self, sink: &dyn EventSink) {
        sink.counter(names::TC_NODES, self.nodes);
        sink.counter(names::TC_BUDGET_SPENT, self.budget_spent);
        sink.counter(names::TC_EXTENSIONS, self.extensions);
        sink.counter(names::TC_REJECTED_SMALL, self.rejected_small);
        sink.counter(names::TC_COHERENCE_CHECKS, self.coherence_checks);
        sink.counter(names::TC_REJECTED_INCOHERENT, self.rejected_incoherent);
        sink.counter(names::TC_DEDUP_HITS, self.dedup_hits);
        sink.counter(names::TC_RECORDED, self.recorded);
        sink.counter(names::TC_REJECTED_SUBSUMED, self.rejected_subsumed);
        sink.counter(names::TC_REPLACED, self.replaced);
        if let Some(h) = &self.hists {
            sink.histogram(names::H_TC_DEPTH, &h.depth);
            sink.histogram(names::H_TC_CANDIDATES, &h.candidate_set_size);
            sink.histogram(names::H_TC_FANOUT, &h.fanout);
        }
    }
}

/// Mines all maximal triclusters given the biclusters of every time slice
/// (`per_time[t]` = biclusters of slice `t`).
pub fn mine_triclusters(
    m: &Matrix3,
    per_time: &[Vec<Bicluster>],
    params: &Params,
) -> Vec<Tricluster> {
    mine_triclusters_with_budget(m, per_time, params).0
}

/// Like [`mine_triclusters`], but also reports whether the search was cut
/// short by [`Params::max_candidates`].
pub fn mine_triclusters_with_budget(
    m: &Matrix3,
    per_time: &[Vec<Bicluster>],
    params: &Params,
) -> (Vec<Tricluster>, bool) {
    let (cs, truncated, _) = mine_triclusters_observed(m, per_time, params);
    (cs, truncated)
}

/// Like [`mine_triclusters_with_budget`], but also returns search
/// statistics for the observability layer.
pub fn mine_triclusters_observed(
    m: &Matrix3,
    per_time: &[Vec<Bicluster>],
    params: &Params,
) -> (Vec<Tricluster>, bool, TriclusterStats) {
    mine_triclusters_profiled(m, per_time, params, false)
}

/// Like [`mine_triclusters_observed`], optionally collecting DFS shape
/// histograms (depth, candidate-set size, fan-out) into the returned stats.
pub fn mine_triclusters_profiled(
    m: &Matrix3,
    per_time: &[Vec<Bicluster>],
    params: &Params,
    collect_hists: bool,
) -> (Vec<Tricluster>, bool, TriclusterStats) {
    mine_triclusters_ctrl(m, per_time, params, collect_hists, &RunCtrl::unbounded())
}

/// Like [`mine_triclusters_profiled`], under the run control of `ctrl`: the
/// deadline is polled at every DFS node, truncating the search exactly like
/// an exhausted candidate budget.
pub fn mine_triclusters_ctrl(
    m: &Matrix3,
    per_time: &[Vec<Bicluster>],
    params: &Params,
    collect_hists: bool,
    ctrl: &RunCtrl,
) -> (Vec<Tricluster>, bool, TriclusterStats) {
    assert_eq!(
        per_time.len(),
        m.n_times(),
        "need one bicluster set per time slice"
    );
    let mut stats = TriclusterStats::default();
    if collect_hists {
        stats.hists = Some(Box::default());
    }
    let mut miner = TriMiner {
        m,
        per_time,
        params,
        results: Vec::new(),
        times: Vec::new(),
        budget: params.max_candidates,
        truncated: false,
        stats,
        ctrl,
    };
    let order: Vec<usize> = (0..m.n_times()).collect();
    let all_genes = BitSet::full(m.n_genes());
    let all_samples: Vec<usize> = (0..m.n_samples()).collect();
    miner.dfs(&all_genes, &all_samples, &order);
    if let Some(p) = &ctrl.progress {
        p.add_budget_spent(miner.stats.budget_spent);
    }
    (miner.results, miner.truncated, miner.stats)
}

struct TriMiner<'a> {
    m: &'a Matrix3,
    per_time: &'a [Vec<Bicluster>],
    params: &'a Params,
    results: Vec<Tricluster>,
    times: Vec<usize>,
    budget: Option<u64>,
    truncated: bool,
    stats: TriclusterStats,
    /// Run control: only the deadline is polled here (per DFS node).
    ctrl: &'a RunCtrl,
}

impl TriMiner<'_> {
    fn dfs(&mut self, genes: &BitSet, samples: &[usize], pending: &[usize]) {
        if self.ctrl.token.deadline_exceeded() {
            self.truncated = true;
            return;
        }
        if let Some(b) = &mut self.budget {
            if *b == 0 {
                self.truncated = true;
                return;
            }
            *b -= 1;
            self.stats.budget_spent += 1;
        }
        self.stats.nodes += 1;
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.depth.record(self.times.len() as u64);
            h.candidate_set_size.record(pending.len() as u64);
        }
        let mut children = 0u64;
        self.try_record(genes, samples);
        for (i, &tb) in pending.iter().enumerate() {
            let rest = &pending[i + 1..];
            // Candidate intersections with each bicluster of slice t_b;
            // dedupe identical (X, Y) outcomes at this node.
            let mut seen: HashSet<(Vec<u64>, Vec<usize>)> = HashSet::new();
            for bc in &self.per_time[tb] {
                self.stats.extensions += 1;
                if !bc
                    .genes
                    .intersection_count_at_least(genes, self.params.min_genes)
                {
                    self.stats.rejected_small += 1;
                    continue;
                }
                let new_samples = sorted_intersection(samples, &bc.samples);
                if new_samples.len() < self.params.min_samples {
                    self.stats.rejected_small += 1;
                    continue;
                }
                let mut new_genes = genes.clone();
                new_genes.intersect_with(&bc.genes);
                if new_genes.count() < self.params.min_genes {
                    self.stats.rejected_small += 1;
                    continue;
                }
                // Temporal coherence of the intersected region between t_b
                // and every slice already in Z.
                let mut checks = 0u64;
                let coherent = self.times.iter().all(|&ta| {
                    checks += 1;
                    slice_pair_coherent(
                        self.m,
                        &new_genes,
                        &new_samples,
                        ta,
                        tb,
                        self.params.epsilon_time,
                    )
                });
                self.stats.coherence_checks += checks;
                if !coherent {
                    self.stats.rejected_incoherent += 1;
                    continue;
                }
                if !seen.insert((new_genes.as_blocks().to_vec(), new_samples.clone())) {
                    self.stats.dedup_hits += 1;
                    continue;
                }
                children += 1;
                self.times.push(tb);
                self.dfs(&new_genes, &new_samples, rest);
                self.times.pop();
            }
        }
        if let Some(h) = self.stats.hists.as_deref_mut() {
            h.fanout.record(children);
        }
    }

    fn try_record(&mut self, genes: &BitSet, samples: &[usize]) {
        let p = self.params;
        if self.times.len() < p.min_times
            || samples.len() < p.min_samples
            || genes.count() < p.min_genes
        {
            return;
        }
        if !self.deltas_ok(genes, samples) {
            return;
        }
        let candidate = Tricluster::new(genes.clone(), samples.to_vec(), self.times.clone());
        match insert_maximal_tricluster_counted(&mut self.results, candidate) {
            TriInsertOutcome::Subsumed => self.stats.rejected_subsumed += 1,
            TriInsertOutcome::Inserted { displaced } => {
                self.stats.recorded += 1;
                self.stats.replaced += displaced as u64;
                if let Some(p) = &self.ctrl.progress {
                    p.candidate_recorded();
                }
            }
        }
    }

    /// 3D `δ` checks: `δ^x` bounds the value range within each
    /// `(sample, time)` column over genes; `δ^y` within each `(gene, time)`
    /// row over samples; `δ^z` within each `(gene, sample)` fiber over times.
    fn deltas_ok(&self, genes: &BitSet, samples: &[usize]) -> bool {
        let p = self.params;
        if let Some(dx) = p.delta_gene {
            for &s in samples {
                for &t in &self.times {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for g in genes.iter() {
                        let v = self.m.get(g, s, t);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if hi - lo > dx {
                        return false;
                    }
                }
            }
        }
        if let Some(dy) = p.delta_sample {
            for g in genes.iter() {
                for &t in &self.times {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &s in samples {
                        let v = self.m.get(g, s, t);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if hi - lo > dy {
                        return false;
                    }
                }
            }
        }
        if let Some(dz) = p.delta_time {
            for g in genes.iter() {
                for &s in samples {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &t in &self.times {
                        let v = self.m.get(g, s, t);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if hi - lo > dz {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// What [`insert_maximal_tricluster_counted`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriInsertOutcome {
    /// The candidate was contained in an existing cluster and dropped.
    Subsumed,
    /// The candidate was inserted, displacing `displaced` existing clusters.
    Inserted {
        /// Existing clusters removed because the candidate contains them.
        displaced: usize,
    },
}

/// Inserts `candidate` into `results` keeping only maximal triclusters.
pub fn insert_maximal_tricluster(results: &mut Vec<Tricluster>, candidate: Tricluster) {
    insert_maximal_tricluster_counted(results, candidate);
}

/// Like [`insert_maximal_tricluster`], reporting what happened.
pub fn insert_maximal_tricluster_counted(
    results: &mut Vec<Tricluster>,
    candidate: Tricluster,
) -> TriInsertOutcome {
    if results.iter().any(|c| candidate.is_subcluster_of(c)) {
        return TriInsertOutcome::Subsumed;
    }
    let before = results.len();
    results.retain(|c| !c.is_subcluster_of(&candidate));
    let displaced = before - results.len();
    results.push(candidate);
    TriInsertOutcome::Inserted { displaced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicluster::mine_biclusters;
    use crate::rangegraph::build_range_graph;
    use crate::testdata::{paper_table1, paper_table1_expected};

    fn params() -> Params {
        Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .build()
            .unwrap()
    }

    fn mine_all(m: &Matrix3, p: &Params) -> Vec<Tricluster> {
        let per_time: Vec<Vec<Bicluster>> = (0..m.n_times())
            .map(|t| {
                let rg = build_range_graph(m, t, p);
                mine_biclusters(m, &rg, p)
            })
            .collect();
        mine_triclusters(m, &per_time, p)
    }

    fn sorted_view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
        let mut v: Vec<_> = cs
            .iter()
            .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
            .collect();
        v.sort();
        v
    }

    /// End-to-end on the paper's Table 1: exactly C1, C2, C3 spanning both
    /// time slices.
    #[test]
    fn paper_example_triclusters() {
        let m = paper_table1();
        let got = sorted_view(&mine_all(&m, &params()));
        let mut want = paper_table1_expected();
        want.sort();
        assert_eq!(got, want);
    }

    /// Breaking temporal coherence of C2 at t1 (perturbing one cell) must
    /// drop C2's 2-slice cluster while C1 and C3 survive.
    #[test]
    fn incoherent_slice_pair_is_pruned() {
        let mut m = paper_table1();
        // C2 cell (g2, s4) at t1: 2.5 -> 2.0 breaks the 0.5 slice ratio and
        // the within-slice coherence of C2 at t1.
        m.set(2, 4, 1, 2.0);
        let got = sorted_view(&mine_all(&m, &params()));
        assert!(
            !got.iter().any(|(g, _, _)| g == &vec![0, 2, 6, 9]),
            "C2 should be gone: {got:?}"
        );
        assert!(got.iter().any(|(g, _, _)| g == &vec![1, 4, 8]), "C1 kept");
        assert!(got.iter().any(|(g, _, _)| g == &vec![0, 7, 9]), "C3 kept");
    }

    /// mz larger than the number of coherent slices yields nothing.
    #[test]
    fn min_times_too_high_yields_nothing() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(3)
            .build()
            .unwrap();
        assert!(mine_all(&m, &p).is_empty());
    }

    /// δ^z = 0 requires identical values across time; the fixture scales
    /// slices by 1.2 / 0.5, so nothing survives.
    #[test]
    fn delta_z_zero_kills_time_scaling() {
        let m = paper_table1();
        let p = Params::builder()
            .epsilon(0.01)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .delta_time(0.0)
            .build()
            .unwrap();
        assert!(mine_all(&m, &p).is_empty());
    }

    /// δ^z large enough keeps all clusters. The widest time fiber is C3's
    /// g7 (8.0 → 4.0, spread 4.0); δ^z = 4 keeps everything, δ^z = 2 keeps
    /// only C1 (largest drift 10.8 − 9.0 = 1.8).
    #[test]
    fn delta_z_thresholds() {
        let m = paper_table1();
        let mk = |dz: f64| {
            Params::builder()
                .epsilon(0.01)
                .min_genes(3)
                .min_samples(3)
                .min_times(2)
                .delta_time(dz)
                .build()
                .unwrap()
        };
        assert_eq!(mine_all(&m, &mk(4.0)).len(), 3);
        let tight = mine_all(&m, &mk(2.0));
        assert_eq!(tight.len(), 1, "{tight:?}");
        assert_eq!(tight[0].genes.to_vec(), vec![1, 4, 8]);
    }

    #[test]
    fn insert_maximal_tricluster_behaviour() {
        let mk = |g: &[usize], s: &[usize], t: &[usize]| {
            Tricluster::new(
                BitSet::from_indices(10, g.iter().copied()),
                s.to_vec(),
                t.to_vec(),
            )
        };
        let mut v = Vec::new();
        insert_maximal_tricluster(&mut v, mk(&[1, 2], &[0], &[0]));
        insert_maximal_tricluster(&mut v, mk(&[1, 2], &[0], &[0, 1]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].times, vec![0, 1]);
        insert_maximal_tricluster(&mut v, mk(&[1], &[0], &[1]));
        assert_eq!(v.len(), 1, "subsumed candidate rejected");
        insert_maximal_tricluster(&mut v, mk(&[3], &[1], &[0]));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn observed_stats_are_deterministic_and_consistent() {
        let m = paper_table1();
        let p = params();
        let per_time: Vec<Vec<Bicluster>> = (0..m.n_times())
            .map(|t| {
                let rg = build_range_graph(&m, t, &p);
                mine_biclusters(&m, &rg, &p)
            })
            .collect();
        let (cs, truncated, stats) = mine_triclusters_observed(&m, &per_time, &p);
        assert!(!truncated);
        assert_eq!(cs.len(), 3);
        assert!(stats.nodes > 0);
        assert!(stats.extensions > 0);
        assert!(stats.coherence_checks > 0);
        assert_eq!(stats.recorded - stats.replaced, cs.len() as u64);
        let (_, _, again) = mine_triclusters_observed(&m, &per_time, &p);
        assert_eq!(stats, again);
    }

    #[test]
    fn profiled_hists_describe_the_dfs() {
        let m = paper_table1();
        let p = params();
        let per_time: Vec<Vec<Bicluster>> = (0..m.n_times())
            .map(|t| {
                let rg = build_range_graph(&m, t, &p);
                mine_biclusters(&m, &rg, &p)
            })
            .collect();
        let (cs, _, stats) = mine_triclusters_profiled(&m, &per_time, &p, true);
        let h = stats.hists.as_ref().expect("collected");
        assert_eq!(h.depth.count(), stats.nodes);
        assert_eq!(h.fanout.count(), stats.nodes);
        assert_eq!(h.fanout.sum(), u128::from(stats.nodes - 1));
        assert_eq!(h.candidate_set_size.max(), m.n_times() as u64);
        // collection changes neither the clusters nor the scalar stats
        let (plain_cs, _, plain) = mine_triclusters_observed(&m, &per_time, &p);
        assert_eq!(cs, plain_cs);
        assert_eq!(plain.nodes, stats.nodes);
        assert!(plain.hists.is_none());
        let (_, _, again) = mine_triclusters_profiled(&m, &per_time, &p, true);
        assert_eq!(stats, again);
    }

    #[test]
    fn incoherence_is_counted() {
        let mut m = paper_table1();
        // Double C2's s4 column at t1. Within slice t1 ratios across genes
        // stay constant, so the bicluster still forms there — but the
        // t1/t0 ratio at s4 now differs from the other samples, so the
        // *temporal* coherence check must reject the extension.
        for g in [0usize, 2, 6, 9] {
            let v = m.get(g, 4, 1);
            m.set(g, 4, 1, v * 2.0);
        }
        let p = params();
        let per_time: Vec<Vec<Bicluster>> = (0..m.n_times())
            .map(|t| {
                let rg = build_range_graph(&m, t, &p);
                mine_biclusters(&m, &rg, &p)
            })
            .collect();
        let (_, _, stats) = mine_triclusters_observed(&m, &per_time, &p);
        assert!(stats.rejected_incoherent > 0);
    }

    #[test]
    #[should_panic(expected = "one bicluster set per time slice")]
    fn wrong_per_time_length_panics() {
        let m = paper_table1();
        mine_triclusters(&m, &[], &params());
    }
}
