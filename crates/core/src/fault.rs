//! Worker panic isolation and fault-injection plumbing.
//!
//! The mining pipeline fans work out at slice, column-pair, and DFS-branch
//! granularity. [`isolate`] wraps each such unit in `catch_unwind`: a panic
//! inside one unit is downgraded to a structured [`WorkerFailure`] and the
//! deterministic merge of the surviving units proceeds. Standalone phase
//! entry points (outside [`mine`](crate::mine)) use a *propagating* log, so
//! their panic behavior is unchanged.
//!
//! The named injection sites listed in [`FAILPOINTS`] compile to no-ops
//! unless the `failpoints` cargo feature is on (test builds only).

use crate::cancel::CancelToken;
use crate::params::Params;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use tricluster_obs::progress::Progress;
use tricluster_obs::timeline::Timeline;
use tricluster_obs::{names, timeline};

/// Every fault-injection site compiled into this crate, in pipeline order.
///
/// | site | unit | on `Error` action |
/// |---|---|---|
/// | `core.mine.entry` | whole run | typed [`MineError::Fault`](crate::MineError::Fault) |
/// | `core.slice` | one time slice | escalates to panic → [`WorkerFailure`] |
/// | `core.rangegraph.pair` | one column pair | escalates to panic → [`WorkerFailure`] |
/// | `core.bicluster.branch` | one DFS branch | escalates to panic → [`WorkerFailure`] |
/// | `core.tricluster.phase` | tricluster phase | escalates to panic → [`WorkerFailure`] |
/// | `core.prune.phase` | merge/prune phase | escalates to panic → [`WorkerFailure`] |
pub const FAILPOINTS: &[&str] = &[
    "core.mine.entry",
    "core.slice",
    "core.rangegraph.pair",
    "core.bicluster.branch",
    "core.tricluster.phase",
    "core.prune.phase",
];

/// Evaluates a failpoint with an error channel: returns the injected error
/// message, if any. (Panic and delay actions act inside.)
#[inline]
pub(crate) fn fail_point(site: &'static str) -> Option<String> {
    let hit = tricluster_failpoint::trigger(site);
    if hit.is_some() {
        timeline::instant_with(names::T_FAILPOINT, || site.to_owned());
    }
    hit
}

/// Evaluates a failpoint at a site with no error channel: an injected
/// `Error` action escalates to a panic, which the enclosing isolation
/// boundary downgrades to a [`WorkerFailure`].
#[inline]
pub(crate) fn fail_point_panic(site: &'static str) {
    if let Some(msg) = tricluster_failpoint::trigger(site) {
        timeline::instant_with(names::T_FAILPOINT, || site.to_owned());
        panic!("{msg}");
    }
}

/// One isolated work unit that panicked instead of completing. Its results
/// are missing from the run (flagged truncated); everything the other units
/// produced is still merged deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Pipeline boundary the unit belonged to: `slice`, `range_graph_pair`,
    /// `bicluster_branch`, `tricluster`, or `prune`.
    pub phase: &'static str,
    /// Which unit failed, e.g. `t=1` or `t=0 pair=(2,5)`.
    pub unit: String,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.phase, self.unit, self.message)
    }
}

/// Collector of [`WorkerFailure`]s, shared across worker threads.
///
/// In *propagating* mode (standalone phase entry points) [`isolate`] runs
/// the unit bare, so panics behave exactly as before this layer existed.
#[derive(Debug)]
pub struct FaultLog {
    collecting: bool,
    failures: Mutex<Vec<WorkerFailure>>,
}

impl FaultLog {
    /// A log that records failures (used by [`mine`](crate::mine)).
    pub fn collecting() -> Self {
        FaultLog {
            collecting: true,
            failures: Mutex::new(Vec::new()),
        }
    }

    /// A log that lets panics propagate (standalone phase callers).
    pub fn propagating() -> Self {
        FaultLog {
            collecting: false,
            failures: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, failure: WorkerFailure) {
        self.failures
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(failure);
    }

    /// Drains the recorded failures, sorted by (phase, unit, message) so the
    /// report section is deterministic regardless of which worker thread
    /// recorded each failure first.
    pub fn take_sorted(&self) -> Vec<WorkerFailure> {
        let mut v = std::mem::take(
            &mut *self
                .failures
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        v.sort_by(|a, b| {
            a.phase
                .cmp(b.phase)
                .then_with(|| a.unit.cmp(&b.unit))
                .then_with(|| a.message.cmp(&b.message))
        });
        v
    }
}

/// Shared run control: the cancellation token plus the fault log. One per
/// mining run, threaded by reference into every phase.
#[derive(Debug)]
pub struct RunCtrl {
    /// Budgets and cooperative cancellation.
    pub token: CancelToken,
    /// Worker-failure collector.
    pub faults: FaultLog,
    /// Live-progress gauges, when the run's sink asked for them (see
    /// [`EventSink::progress`](tricluster_obs::EventSink::progress)).
    /// `None` keeps every update site a branch-and-skip.
    pub progress: Option<Arc<Progress>>,
    /// The run's timeline, when its sink asked for one — carried here so
    /// phases without a sink parameter can still attach the worker threads
    /// they spawn. Cloning shares the journal set (`Arc` inside).
    pub timeline: Option<Timeline>,
}

impl RunCtrl {
    /// No budgets, panics propagate — the behavior of the standalone phase
    /// entry points ([`build_range_graph`](crate::rangegraph::build_range_graph)
    /// and friends).
    pub fn unbounded() -> Self {
        RunCtrl {
            token: CancelToken::unbounded(),
            faults: FaultLog::propagating(),
            progress: None,
            timeline: None,
        }
    }

    /// Budgets from `params`, failures collected — the behavior of
    /// [`mine`](crate::mine).
    pub fn for_params(params: &Params) -> Self {
        RunCtrl::for_params_with_handle(params, crate::cancel::CancelHandle::new())
    }

    /// Like [`RunCtrl::for_params`], polling an external
    /// [`CancelHandle`](crate::cancel::CancelHandle) alongside the budgets.
    pub fn for_params_with_handle(params: &Params, handle: crate::cancel::CancelHandle) -> Self {
        RunCtrl {
            token: CancelToken::with_handle(params.deadline, params.max_memory, handle),
            faults: FaultLog::collecting(),
            progress: None,
            timeline: None,
        }
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one work unit behind an isolation boundary.
///
/// With a collecting log, a panic inside `f` is recorded as a
/// [`WorkerFailure`] labeled `phase`/`unit` and `None` is returned; with a
/// propagating log, `f` runs bare (zero overhead, panics escape unchanged).
pub(crate) fn isolate<T>(
    log: &FaultLog,
    phase: &'static str,
    unit: impl FnOnce() -> String,
    f: impl FnOnce() -> T,
) -> Option<T> {
    if !log.collecting {
        return Some(f());
    }
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            let unit = unit();
            timeline::instant_with(names::T_WORKER_FAILURE, || format!("{phase} {unit}"));
            log.record(WorkerFailure {
                phase,
                unit,
                message: panic_message(payload),
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_log_downgrades_panics() {
        let log = FaultLog::collecting();
        let out = isolate(&log, "slice", || "t=3".into(), || panic!("poisoned cell"));
        assert_eq!(out, None::<u32>);
        let failures = log.take_sorted();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].phase, "slice");
        assert_eq!(failures[0].unit, "t=3");
        assert_eq!(failures[0].message, "poisoned cell");
        assert!(failures[0].to_string().contains("t=3"));
    }

    #[test]
    fn collecting_log_passes_values_through() {
        let log = FaultLog::collecting();
        assert_eq!(isolate(&log, "slice", || "t=0".into(), || 41 + 1), Some(42));
        assert!(log.take_sorted().is_empty());
    }

    #[test]
    #[should_panic(expected = "straight through")]
    fn propagating_log_lets_panics_escape() {
        let log = FaultLog::propagating();
        let _: Option<()> = isolate(
            &log,
            "slice",
            || "t=0".into(),
            || panic!("straight through"),
        );
    }

    #[test]
    fn failures_drain_in_sorted_order() {
        let log = FaultLog::collecting();
        for unit in ["t=2", "t=0", "t=1"] {
            let _: Option<()> = isolate(&log, "slice", || unit.into(), || panic!("boom"));
        }
        let units: Vec<_> = log.take_sorted().into_iter().map(|f| f.unit).collect();
        assert_eq!(units, ["t=0", "t=1", "t=2"]);
        assert!(log.take_sorted().is_empty(), "draining");
    }
}
