//! The paper's running example (Table 1) as a shared test fixture.
//!
//! The dataset is a `10 genes × 7 samples × 2 times` matrix reconstructed
//! from the constraints stated in the paper:
//!
//! * `C1 = {g1,g4,g8} × {s0,s1,s4,s6} × {t0,t1}` is a scaling cluster with
//!   row pattern `(3.0, 2.5, 2.0, 1.0)` scaled by `1, 3, 2`; between `t1`
//!   and `t0` its values scale by `1.2`.
//! * `C2 = {g0,g2,g6,g9} × {s1,s4,s6} × {t0,t1}` holds constant rows
//!   `1, 5, 3, 4`; `t1 = 0.5 × t0`.
//! * `C3 = {g0,g7,g9} × {s1,s2,s4,s5} × {t0,t1}` holds constant rows
//!   `1, 8, 4`; `t1 = 0.5 × t0`.
//! * `C4 = {g0,g2,g6,g7,g9} × {s1,s4} × {t0,t1}` emerges when `my = 2` and
//!   is subsumed by `C2` and `C3`.
//! * Genes `g3` and `g5` have `s0/s6` ratio `3.3` at `t0` (Figure 1), with
//!   `g3` additionally on the `(s0,s1)` edge (`6.6/5.5 = 1.2`, Figure 2).
//!
//! Cells the paper leaves blank are filled with deterministic pseudo-random
//! values in `[7, 30)` (the paper: "we assume that these are filled by some
//! random expression values"), far from the cluster values so they cannot
//! form spurious coherent ranges at `ε = 0.01`.

use tricluster_matrix::Matrix3;

/// Builds the Table 1 example matrix (`10 × 7 × 2`).
pub fn paper_table1() -> Matrix3 {
    let mut m = Matrix3::zeros(10, 7, 2);

    // deterministic filler for blank cells: xorshift over [7, 30)
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut filler = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        7.0 + (state % 2300) as f64 / 100.0
    };
    for t in 0..2 {
        for g in 0..10 {
            for s in 0..7 {
                m.set(g, s, t, filler());
            }
        }
    }

    // --- t0 ---
    // C1: pattern (3.0, 2.5, 2.0, 1.0) at (s0, s1, s4, s6), scales 1, 3, 2
    let c1_pattern = [(0usize, 3.0), (1, 2.5), (4, 2.0), (6, 1.0)];
    for (gene, scale) in [(1usize, 1.0), (4, 3.0), (8, 2.0)] {
        for &(s, v) in &c1_pattern {
            m.set(gene, s, 0, scale * v);
            m.set(gene, s, 1, scale * v * 1.2); // t1 = 1.2 x t0
        }
    }
    // C2: constant rows over (s1, s4, s6)
    for (gene, v) in [(0usize, 1.0), (2, 5.0), (6, 3.0), (9, 4.0)] {
        for s in [1usize, 4, 6] {
            m.set(gene, s, 0, v);
            m.set(gene, s, 1, v * 0.5); // t1 = 0.5 x t0
        }
    }
    // C3: constant rows over (s1, s2, s4, s5)
    for (gene, v) in [(0usize, 1.0), (7, 8.0), (9, 4.0)] {
        for s in [1usize, 2, 4, 5] {
            m.set(gene, s, 0, v);
            m.set(gene, s, 1, v * 0.5);
        }
    }
    // g3: on the (s0,s1) edge with ratio 1.2 and the (s0,s6) ratio 3.3
    for (s, v) in [(0usize, 6.6), (1, 5.5), (6, 2.0)] {
        m.set(3, s, 0, v);
        m.set(3, s, 1, v * 0.5);
    }
    // g5: (s0,s6) ratio 3.3 and (s0,s4) ratio 1.5
    for (s, v) in [(0usize, 6.6), (4, 4.4), (6, 2.0)] {
        m.set(5, s, 0, v);
        m.set(5, s, 1, v * 0.5);
    }
    // g0's s0 cell is 3.6 in Table 1, giving the s0/s6 ratio 3.6 of Figure 1
    m.set(0, 0, 0, 3.6);
    m.set(0, 0, 1, 3.6 * 0.5);
    m
}

/// The expected maximal triclusters for `mx=my=3, mz=2, ε=0.01` on
/// [`paper_table1`], as `(genes, samples, times)` index lists.
pub fn paper_table1_expected() -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    vec![
        (vec![1, 4, 8], vec![0, 1, 4, 6], vec![0, 1]), // C1
        (vec![0, 2, 6, 9], vec![1, 4, 6], vec![0, 1]), // C2
        (vec![0, 7, 9], vec![1, 2, 4, 5], vec![0, 1]), // C3
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_dimensions() {
        let m = paper_table1();
        assert_eq!(m.dims(), (10, 7, 2));
    }

    #[test]
    fn table1_known_cells() {
        let m = paper_table1();
        // C1 anchor values
        assert_eq!(m.get(1, 0, 0), 3.0);
        assert_eq!(m.get(1, 6, 0), 1.0);
        assert_eq!(m.get(4, 0, 0), 9.0);
        assert_eq!(m.get(8, 1, 0), 5.0);
        assert!((m.get(1, 0, 1) - 3.6).abs() < 1e-12, "t1 = 1.2 x t0");
        // C2 / C3 constants
        assert_eq!(m.get(2, 4, 0), 5.0);
        assert_eq!(m.get(7, 2, 0), 8.0);
        assert_eq!(m.get(9, 5, 1), 2.0);
        // Figure 1 ratios of s0/s6 at t0
        for (g, want) in [(1usize, 3.0), (4, 3.0), (8, 3.0), (3, 3.3), (5, 3.3)] {
            let r = m.get(g, 0, 0) / m.get(g, 6, 0);
            assert!((r - want).abs() < 1e-9, "gene {g}: ratio {r} != {want}");
        }
        let r0 = m.get(0, 0, 0) / m.get(0, 6, 0);
        assert!(
            (r0 - 3.6).abs() < 1e-9,
            "g0's s0/s6 ratio is Figure 1's 3.6"
        );
    }

    #[test]
    fn fillers_are_in_range_and_deterministic() {
        let a = paper_table1();
        let b = paper_table1();
        assert_eq!(a, b, "fixture must be deterministic");
        // blank cell (g0, s3) is a filler
        let v = a.get(0, 3, 0);
        assert!((7.0..30.0).contains(&v));
    }
}
