//! Mining parameters (`ε`, `mx/my/mz`, `δ` thresholds, merge options,
//! run budgets).

use std::fmt;
use std::time::Duration;

/// Thresholds controlling the optional merge/delete post-processing
/// (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeParams {
    /// Deletion threshold `η`: a cluster whose span outside the other
    /// cluster(s) is a fraction `< η` of its own span is deleted
    /// (cases 1 and 2 of §4.4).
    pub eta: f64,
    /// Merge threshold `γ`: two clusters are merged into their bounding
    /// cluster when the bounding cluster's *new* cells are a fraction `< γ`
    /// of its span (case 3 of §4.4).
    pub gamma: f64,
}

impl Default for MergeParams {
    fn default() -> Self {
        MergeParams {
            eta: 0.2,
            gamma: 0.1,
        }
    }
}

/// Controls the extended/split/patched range post-processing of §4.1.
///
/// The paper merges chains of overlapping valid ranges into *extended*
/// ranges (robustness to a too-stringent `ε`), splits extended ranges wider
/// than `2ε` into blocks, and adds overlapping *patched* ranges so no
/// cluster straddling a split boundary is lost. Exposed as a switch so the
/// ablation benches can measure its effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeExtension {
    /// Emit only the maximal valid ranges (no merging).
    Off,
    /// Full paper behavior: extended ranges, split blocks, patched blocks.
    On,
}

/// Which work-item granularity the per-slice phases fan out at.
///
/// Slice-level fan-out stripes whole time slices across workers — ideal when
/// `n_times ≥ threads`. Intra-slice fan-out processes slices one at a time
/// but parallelizes *inside* each: `(slice, column-pair)` work items for
/// range-graph construction and top-level sample-seed branches for the
/// bicluster DFS — ideal for few-slice/many-gene shapes (e.g. yeast
/// elutriation: huge slices, few time points). Results and every
/// input-determined report section are identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Decide per run: slice-level when there are at least as many slices
    /// as worker threads, intra-slice otherwise.
    #[default]
    Auto,
    /// Always slice-level (the pre-scheduler behavior).
    Slice,
    /// Always intra-slice (pair-level range graphs, branch-level DFS).
    Pair,
}

impl FanoutMode {
    /// Stable lowercase name (CLI flag value / report field).
    pub fn as_str(self) -> &'static str {
        match self {
            FanoutMode::Auto => "auto",
            FanoutMode::Slice => "slice",
            FanoutMode::Pair => "pair",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<FanoutMode> {
        match s {
            "auto" => Some(FanoutMode::Auto),
            "slice" => Some(FanoutMode::Slice),
            "pair" | "intra" => Some(FanoutMode::Pair),
            _ => None,
        }
    }
}

/// All mining parameters. Build with [`Params::builder`].
///
/// Field names follow the paper: `ε` is the maximum ratio threshold,
/// `mx/my/mz` are minimum cardinalities per dimension, `δ^x/δ^y/δ^z` are
/// maximum value ranges per dimension (`None` = unconstrained).
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Maximum ratio threshold `ε` for sample-pair coherence:
    /// `max(r_i, r_j)/min(r_i, r_j) − 1 ≤ ε`.
    pub epsilon: f64,
    /// Relaxed ratio threshold along the time dimension (the paper: "we may
    /// then relax the maximum ratio threshold for the temporal dimension").
    /// Defaults to `epsilon`.
    pub epsilon_time: f64,
    /// Minimum number of genes per cluster (`mx`).
    pub min_genes: usize,
    /// Minimum number of samples per cluster (`my`).
    pub min_samples: usize,
    /// Minimum number of time points per cluster (`mz`).
    pub min_times: usize,
    /// Maximum expression range along the gene dimension (`δ^x`):
    /// within any fixed (sample, time) column of the cluster,
    /// `max − min ≤ δ^x`. `None` leaves it unconstrained.
    pub delta_gene: Option<f64>,
    /// Maximum expression range along the sample dimension (`δ^y`).
    pub delta_sample: Option<f64>,
    /// Maximum expression range along the time dimension (`δ^z`).
    pub delta_time: Option<f64>,
    /// Merge/delete post-processing; `None` disables it.
    pub merge: Option<MergeParams>,
    /// Extended/split/patched range handling (§4.1).
    pub range_extension: RangeExtension,
    /// Optional budget on DFS candidate visits per search phase.
    ///
    /// Cluster enumeration is worst-case exponential (§4.5); a budget turns
    /// pathological inputs into a *truncated* result (flagged on
    /// [`MiningResult`](crate::MiningResult)) instead of a hang. `None`
    /// (default) searches exhaustively.
    pub max_candidates: Option<u64>,
    /// Number of worker threads for the per-slice fan-out. `None` (default)
    /// uses the available parallelism. Counter values in the run report are
    /// identical for every setting; only wall-clock changes.
    pub threads: Option<usize>,
    /// Granularity of the parallel fan-out. Like `threads`, this only
    /// affects scheduling: every input-determined report section is
    /// identical for all modes.
    pub fanout: FanoutMode,
    /// Optional wall-clock budget for the whole run. The phases poll a
    /// shared [`CancelToken`](crate::CancelToken); expiry yields a truncated
    /// (sound but possibly incomplete) result. Unlike the other budgets,
    /// *where* a deadline cuts is inherently wall-clock-dependent.
    pub deadline: Option<Duration>,
    /// Optional budget on retained logical bytes (the deterministic sizes of
    /// the run's memory accounting: matrix + retained per-slice biclusters).
    /// Slices whose retention would exceed the budget contribute no
    /// biclusters (deterministically, in slice order) and the run is flagged
    /// truncated. A budget smaller than the matrix itself is a front-door
    /// [`MineError::MemoryBudget`](crate::MineError::MemoryBudget).
    pub max_memory: Option<u64>,
}

impl Params {
    /// Starts building a parameter set. `epsilon` defaults to `0.01` and the
    /// minimum cardinalities to `(2, 2, 2)`.
    pub fn builder() -> ParamsBuilder {
        ParamsBuilder::default()
    }

    /// Checks every invariant [`ParamsBuilder::build`] enforces, for
    /// parameter values however they were produced. [`mine`](crate::mine)
    /// calls this at the front door, so hand-mutated `Params` cannot smuggle
    /// nonsensical settings (negative `ε`, zero minimum cardinalities,
    /// negative `δ`, zero budgets) into the pipeline.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(ParamsError::BadEpsilon(self.epsilon));
        }
        if !self.epsilon_time.is_finite() || self.epsilon_time < 0.0 {
            return Err(ParamsError::BadEpsilon(self.epsilon_time));
        }
        if self.min_genes == 0 {
            return Err(ParamsError::ZeroMinimum("genes (mx)"));
        }
        if self.min_samples == 0 {
            return Err(ParamsError::ZeroMinimum("samples (my)"));
        }
        if self.min_times == 0 {
            return Err(ParamsError::ZeroMinimum("times (mz)"));
        }
        for (name, d) in [
            ("gene (delta_x)", self.delta_gene),
            ("sample (delta_y)", self.delta_sample),
            ("time (delta_z)", self.delta_time),
        ] {
            if let Some(v) = d {
                if v.is_nan() || v < 0.0 {
                    return Err(ParamsError::BadDelta(name, v));
                }
            }
        }
        if let Some(m) = self.merge {
            if !(0.0..=1.0).contains(&m.eta) {
                return Err(ParamsError::BadMergeThreshold("eta", m.eta));
            }
            if !(0.0..=1.0).contains(&m.gamma) {
                return Err(ParamsError::BadMergeThreshold("gamma", m.gamma));
            }
        }
        if self.max_candidates == Some(0) {
            return Err(ParamsError::ZeroMinimum("max_candidates"));
        }
        if self.threads == Some(0) {
            return Err(ParamsError::ZeroMinimum("threads"));
        }
        if self.max_memory == Some(0) {
            return Err(ParamsError::ZeroMinimum("max_memory"));
        }
        Ok(())
    }
}

/// Errors from [`ParamsBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// `epsilon` (or `epsilon_time`) was negative or non-finite.
    BadEpsilon(f64),
    /// A minimum cardinality was zero.
    ZeroMinimum(&'static str),
    /// A `δ` threshold was negative or NaN.
    BadDelta(&'static str, f64),
    /// `η` or `γ` outside `[0, 1]`.
    BadMergeThreshold(&'static str, f64),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadEpsilon(e) => {
                write!(f, "epsilon must be finite and >= 0, got {e}")
            }
            ParamsError::ZeroMinimum(dim) => {
                write!(f, "minimum cardinality for {dim} must be >= 1")
            }
            ParamsError::BadDelta(dim, v) => {
                write!(
                    f,
                    "delta threshold for {dim} must be finite and >= 0, got {v}"
                )
            }
            ParamsError::BadMergeThreshold(name, v) => {
                write!(f, "{name} must lie in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Builder for [`Params`].
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    epsilon: f64,
    epsilon_time: Option<f64>,
    min_genes: usize,
    min_samples: usize,
    min_times: usize,
    delta_gene: Option<f64>,
    delta_sample: Option<f64>,
    delta_time: Option<f64>,
    merge: Option<MergeParams>,
    range_extension: RangeExtension,
    max_candidates: Option<u64>,
    threads: Option<usize>,
    fanout: FanoutMode,
    deadline: Option<Duration>,
    max_memory: Option<u64>,
}

impl Default for ParamsBuilder {
    fn default() -> Self {
        ParamsBuilder {
            epsilon: 0.01,
            epsilon_time: None,
            min_genes: 2,
            min_samples: 2,
            min_times: 2,
            delta_gene: None,
            delta_sample: None,
            delta_time: None,
            merge: None,
            range_extension: RangeExtension::On,
            max_candidates: None,
            threads: None,
            fanout: FanoutMode::Auto,
            deadline: None,
            max_memory: None,
        }
    }
}

impl ParamsBuilder {
    /// Sets the maximum ratio threshold `ε`.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self
    }

    /// Sets a relaxed ratio threshold for the time dimension (defaults to
    /// `ε` when not set).
    pub fn epsilon_time(mut self, eps: f64) -> Self {
        self.epsilon_time = Some(eps);
        self
    }

    /// Sets the minimum number of genes `mx`.
    pub fn min_genes(mut self, mx: usize) -> Self {
        self.min_genes = mx;
        self
    }

    /// Sets the minimum number of samples `my`.
    pub fn min_samples(mut self, my: usize) -> Self {
        self.min_samples = my;
        self
    }

    /// Sets the minimum number of time points `mz`.
    pub fn min_times(mut self, mz: usize) -> Self {
        self.min_times = mz;
        self
    }

    /// Sets all three minimum cardinalities at once.
    pub fn min_size(self, mx: usize, my: usize, mz: usize) -> Self {
        self.min_genes(mx).min_samples(my).min_times(mz)
    }

    /// Constrains the maximum value range along the gene dimension (`δ^x`).
    pub fn delta_gene(mut self, d: f64) -> Self {
        self.delta_gene = Some(d);
        self
    }

    /// Constrains the maximum value range along the sample dimension (`δ^y`).
    pub fn delta_sample(mut self, d: f64) -> Self {
        self.delta_sample = Some(d);
        self
    }

    /// Constrains the maximum value range along the time dimension (`δ^z`).
    pub fn delta_time(mut self, d: f64) -> Self {
        self.delta_time = Some(d);
        self
    }

    /// Enables merge/delete post-processing with the given thresholds.
    pub fn merge(mut self, merge: MergeParams) -> Self {
        self.merge = Some(merge);
        self
    }

    /// Sets the extended/split/patched range behavior.
    pub fn range_extension(mut self, ext: RangeExtension) -> Self {
        self.range_extension = ext;
        self
    }

    /// Bounds the number of DFS candidates each search phase may visit;
    /// exceeding it truncates the search (reported on the result).
    pub fn max_candidates(mut self, budget: u64) -> Self {
        self.max_candidates = Some(budget);
        self
    }

    /// Fixes the number of worker threads for the per-slice fan-out
    /// (default: available parallelism). `1` forces a serial run.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Selects the parallel fan-out granularity (default: [`FanoutMode::Auto`]).
    pub fn fanout(mut self, mode: FanoutMode) -> Self {
        self.fanout = mode;
        self
    }

    /// Bounds the run's wall-clock time; expiry truncates the run.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bounds the run's retained logical bytes; exceeding it truncates the
    /// run (see [`Params::max_memory`]).
    pub fn max_memory(mut self, bytes: u64) -> Self {
        self.max_memory = Some(bytes);
        self
    }

    /// Validates and produces the final [`Params`]
    /// (see [`Params::validate`]).
    pub fn build(self) -> Result<Params, ParamsError> {
        let params = Params {
            epsilon: self.epsilon,
            epsilon_time: self.epsilon_time.unwrap_or(self.epsilon),
            min_genes: self.min_genes,
            min_samples: self.min_samples,
            min_times: self.min_times,
            delta_gene: self.delta_gene,
            delta_sample: self.delta_sample,
            delta_time: self.delta_time,
            merge: self.merge,
            range_extension: self.range_extension,
            max_candidates: self.max_candidates,
            threads: self.threads,
            fanout: self.fanout,
            deadline: self.deadline,
            max_memory: self.max_memory,
        };
        params.validate()?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::builder().build().unwrap();
        assert_eq!(p.epsilon, 0.01);
        assert_eq!(p.epsilon_time, 0.01, "epsilon_time defaults to epsilon");
        assert_eq!((p.min_genes, p.min_samples, p.min_times), (2, 2, 2));
        assert_eq!(p.delta_gene, None);
        assert_eq!(p.merge, None);
        assert_eq!(p.range_extension, RangeExtension::On);
    }

    #[test]
    fn paper_yeast_parameters() {
        let p = Params::builder()
            .min_size(50, 4, 5)
            .epsilon(0.003)
            .epsilon_time(0.05)
            .build()
            .unwrap();
        assert_eq!(p.min_genes, 50);
        assert_eq!(p.min_samples, 4);
        assert_eq!(p.min_times, 5);
        assert_eq!(p.epsilon, 0.003);
        assert_eq!(p.epsilon_time, 0.05);
    }

    #[test]
    fn rejects_negative_epsilon() {
        assert_eq!(
            Params::builder().epsilon(-0.1).build(),
            Err(ParamsError::BadEpsilon(-0.1))
        );
        assert!(matches!(
            Params::builder().epsilon(f64::NAN).build(),
            Err(ParamsError::BadEpsilon(_))
        ));
        assert!(matches!(
            Params::builder().epsilon_time(-1.0).build(),
            Err(ParamsError::BadEpsilon(_))
        ));
    }

    #[test]
    fn rejects_zero_minimums() {
        assert_eq!(
            Params::builder().min_genes(0).build(),
            Err(ParamsError::ZeroMinimum("genes (mx)"))
        );
        assert_eq!(
            Params::builder().min_samples(0).build(),
            Err(ParamsError::ZeroMinimum("samples (my)"))
        );
        assert_eq!(
            Params::builder().min_times(0).build(),
            Err(ParamsError::ZeroMinimum("times (mz)"))
        );
    }

    #[test]
    fn rejects_bad_deltas() {
        assert!(matches!(
            Params::builder().delta_gene(-1.0).build(),
            Err(ParamsError::BadDelta("gene (delta_x)", _))
        ));
        assert!(matches!(
            Params::builder().delta_time(f64::NAN).build(),
            Err(ParamsError::BadDelta(_, _))
        ));
        // zero delta is legal: "identical values" clusters
        assert!(Params::builder().delta_sample(0.0).build().is_ok());
    }

    #[test]
    fn rejects_bad_merge_thresholds() {
        let m = MergeParams {
            eta: 1.5,
            gamma: 0.1,
        };
        assert!(matches!(
            Params::builder().merge(m).build(),
            Err(ParamsError::BadMergeThreshold("eta", _))
        ));
        let m = MergeParams {
            eta: 0.1,
            gamma: -0.2,
        };
        assert!(matches!(
            Params::builder().merge(m).build(),
            Err(ParamsError::BadMergeThreshold("gamma", _))
        ));
        assert!(Params::builder()
            .merge(MergeParams::default())
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_zero_threads() {
        assert_eq!(
            Params::builder().threads(0).build(),
            Err(ParamsError::ZeroMinimum("threads"))
        );
        assert_eq!(Params::builder().build().unwrap().threads, None);
        assert_eq!(
            Params::builder().threads(4).build().unwrap().threads,
            Some(4)
        );
    }

    #[test]
    fn fanout_defaults_to_auto_and_parses() {
        assert_eq!(Params::builder().build().unwrap().fanout, FanoutMode::Auto);
        assert_eq!(
            Params::builder()
                .fanout(FanoutMode::Pair)
                .build()
                .unwrap()
                .fanout,
            FanoutMode::Pair
        );
        for mode in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            assert_eq!(FanoutMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(FanoutMode::parse("intra"), Some(FanoutMode::Pair));
        assert_eq!(FanoutMode::parse("bogus"), None);
    }

    #[test]
    fn budgets_default_off_and_reject_zero_memory() {
        let p = Params::builder().build().unwrap();
        assert_eq!(p.deadline, None);
        assert_eq!(p.max_memory, None);
        let p = Params::builder()
            .deadline(Duration::from_secs(5))
            .max_memory(1 << 20)
            .build()
            .unwrap();
        assert_eq!(p.deadline, Some(Duration::from_secs(5)));
        assert_eq!(p.max_memory, Some(1 << 20));
        assert_eq!(
            Params::builder().max_memory(0).build(),
            Err(ParamsError::ZeroMinimum("max_memory"))
        );
        // a zero deadline is legal: it truncates immediately
        assert!(Params::builder().deadline(Duration::ZERO).build().is_ok());
    }

    #[test]
    fn validate_catches_hand_mutated_params() {
        let mut p = Params::builder().build().unwrap();
        assert_eq!(p.validate(), Ok(()));
        p.epsilon = -1.0;
        assert_eq!(p.validate(), Err(ParamsError::BadEpsilon(-1.0)));
        p.epsilon = 0.01;
        p.min_samples = 0;
        assert_eq!(p.validate(), Err(ParamsError::ZeroMinimum("samples (my)")));
        p.min_samples = 2;
        p.delta_gene = Some(-0.5);
        assert!(matches!(p.validate(), Err(ParamsError::BadDelta(_, _))));
    }

    #[test]
    fn error_messages_name_the_field() {
        let e = Params::builder().min_genes(0).build().unwrap_err();
        assert!(e.to_string().contains("genes"));
        let e = Params::builder().epsilon(-2.0).build().unwrap_err();
        assert!(e.to_string().contains("epsilon"));
    }
}
