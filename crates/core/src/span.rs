//! Span algebra for overlap analysis (paper §4.4).
//!
//! The *span* of a cluster `C = X × Y × Z` is the set of `(g, s, t)` cells
//! it covers, `L_C`. The merge/delete rules need the sizes of derived spans:
//!
//! * `|L_A|` — the product of the dimension cardinalities,
//! * `|L_A ∩ L_B|` — the product of per-dimension intersection sizes
//!   (spans of axis-aligned boxes intersect as boxes),
//! * `|L_{B−A}| = |L_B| − |L_A ∩ L_B|`,
//! * `|L_{A+B}|` — the span of the bounding cluster
//!   `(X_A∪X_B) × (Y_A∪Y_B) × (Z_A∪Z_B)`,
//! * `|L_A − ∪_i L_{B_i}|` — computed by enumerating `A`'s cells, since
//!   unions of many boxes have no product form (inclusion–exclusion over
//!   `k` clusters is `2^k`).

use crate::cluster::Tricluster;

/// `|L_C|`: number of cells spanned by the cluster.
pub fn span_size(c: &Tricluster) -> usize {
    c.span_size()
}

/// `|L_A ∩ L_B|`: cells common to both clusters.
pub fn intersection_size(a: &Tricluster, b: &Tricluster) -> usize {
    let (x, y, z) = a.intersection_shape(b);
    x * y * z
}

/// `|L_{B−A}|`: cells of `b` not in `a`.
pub fn difference_size(b: &Tricluster, a: &Tricluster) -> usize {
    b.span_size() - intersection_size(a, b)
}

/// `|L_{A+B}|`: span of the bounding cluster.
pub fn bounding_size(a: &Tricluster, b: &Tricluster) -> usize {
    let genes = a.genes.union(&b.genes).count();
    let samples = crate::cluster::sorted_union(&a.samples, &b.samples).len();
    let times = crate::cluster::sorted_union(&a.times, &b.times).len();
    genes * samples * times
}

/// `|L_{(A+B)−A−B}|`: cells the bounding cluster adds beyond `A ∪ B`
/// (the quantity of merge rule 3).
pub fn bounding_extra_size(a: &Tricluster, b: &Tricluster) -> usize {
    bounding_size(a, b) + intersection_size(a, b) - a.span_size() - b.span_size()
}

/// `|L_A − ∪_i L_{B_i}|`: cells of `a` not covered by any of `others`
/// (the quantity of deletion rule 2). Enumerates `a`'s cells.
pub fn uncovered_size(a: &Tricluster, others: &[&Tricluster]) -> usize {
    a.cells()
        .filter(|&(g, s, t)| !others.iter().any(|b| b.contains_cell(g, s, t)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_bitset::BitSet;

    fn mk(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(20, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    #[test]
    fn span_size_is_product() {
        let c = mk(&[0, 1, 2], &[0, 1], &[0, 1, 2, 3]);
        assert_eq!(span_size(&c), 24);
    }

    #[test]
    fn intersection_of_disjoint_is_zero() {
        let a = mk(&[0, 1], &[0], &[0]);
        let b = mk(&[2, 3], &[0], &[0]);
        assert_eq!(intersection_size(&a, &b), 0);
        // disjoint in one dimension only is still zero cells
        let c = mk(&[0, 1], &[1], &[0]);
        assert_eq!(intersection_size(&a, &c), 0);
    }

    #[test]
    fn intersection_matches_enumeration() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0, 1]);
        let b = mk(&[1, 2, 3], &[1, 2], &[1]);
        let expected = a
            .cells()
            .filter(|&(g, s, t)| b.contains_cell(g, s, t))
            .count();
        assert_eq!(intersection_size(&a, &b), expected);
        assert_eq!(expected, 2);
    }

    #[test]
    fn difference_size_complements_intersection() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0, 1]);
        let b = mk(&[1, 2, 3], &[1, 2], &[1]);
        assert_eq!(
            difference_size(&b, &a),
            b.span_size() - intersection_size(&a, &b)
        );
        assert_eq!(difference_size(&a, &a), 0, "A − A is empty");
    }

    #[test]
    fn bounding_size_and_extra() {
        let a = mk(&[0, 1], &[0], &[0]);
        let b = mk(&[2], &[1], &[0]);
        // bounding: {0,1,2} x {0,1} x {0} = 6 cells; A∪B = 3 cells;
        // intersection empty -> extra = 6 - 2 - 1 = 3
        assert_eq!(bounding_size(&a, &b), 6);
        assert_eq!(bounding_extra_size(&a, &b), 3);
    }

    #[test]
    fn bounding_extra_zero_when_nested() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0]);
        let b = mk(&[0, 1], &[0], &[0]);
        assert_eq!(bounding_extra_size(&a, &b), 0);
    }

    #[test]
    fn uncovered_full_when_no_others() {
        let a = mk(&[0, 1], &[0, 1], &[0]);
        assert_eq!(uncovered_size(&a, &[]), 4);
    }

    #[test]
    fn uncovered_zero_when_fully_covered() {
        let a = mk(&[0, 1], &[0, 1], &[0]);
        let b1 = mk(&[0], &[0, 1], &[0]);
        let b2 = mk(&[1], &[0, 1], &[0]);
        assert_eq!(uncovered_size(&a, &[&b1, &b2]), 0);
    }

    #[test]
    fn uncovered_partial() {
        let a = mk(&[0, 1, 2], &[0], &[0]);
        let b = mk(&[0], &[0], &[0]);
        assert_eq!(uncovered_size(&a, &[&b]), 2);
    }

    /// Cross-check the product formulas against brute-force cell counting
    /// on a grid of box pairs.
    #[test]
    fn formulas_match_enumeration_exhaustively() {
        let boxes = [
            mk(&[0, 1], &[0, 1], &[0, 1]),
            mk(&[1, 2, 3], &[1], &[0]),
            mk(&[4], &[2, 3], &[1, 2]),
            mk(&[0, 1, 2, 3, 4], &[0, 1, 2, 3], &[0, 1, 2]),
        ];
        for a in &boxes {
            for b in &boxes {
                let inter = a
                    .cells()
                    .filter(|&(g, s, t)| b.contains_cell(g, s, t))
                    .count();
                assert_eq!(intersection_size(a, b), inter);
                assert_eq!(difference_size(b, a), b.span_size() - inter);
                let bound = a.bounding(b);
                assert_eq!(bounding_size(a, b), bound.span_size());
                let extra = bound
                    .cells()
                    .filter(|&(g, s, t)| !a.contains_cell(g, s, t) && !b.contains_cell(g, s, t))
                    .count();
                assert_eq!(bounding_extra_size(a, b), extra);
            }
        }
    }
}
