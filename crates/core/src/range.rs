//! Valid ratio ranges (paper §4.1, Figure 1).
//!
//! For a pair of sample columns `(s_a, s_b)` in one time slice, each gene
//! `g_x` has a ratio `r_x = d_xa / d_xb`. A *valid ratio range* `[r_l, r_u]`
//! is a maximal interval of ratios such that
//!
//! 1. `max(|r_u|,|r_l|)/min(|r_u|,|r_l|) − 1 ≤ ε`,
//! 2. it spans at least `mx` genes,
//! 3. negative ratios only group genes whose two column values have a
//!    consistent sign pattern,
//! 4. no further gene can be added while preserving the `ε` bound.
//!
//! Overlapping valid ranges are chained into *extended* ranges; an extended
//! range wider than `2ε` is re-covered by *split* blocks of width at most
//! `2ε` plus overlapping *patched* blocks offset by `ε`, so that no cluster
//! straddling a split boundary is lost (paper Figure 1(b)).
//!
//! ## Sign handling
//!
//! Per the paper's validity condition 2, a *negative* ratio is only
//! meaningful when the columns have consistent signs across the grouped
//! genes. We therefore partition genes into three groups before sorting:
//! positive ratios (covers both `(+,+)` and `(−,−)` value pairs — the paper
//! places no constraint on these), negative ratios with `(+,−)` values, and
//! negative ratios with `(−,+)` values. Ranges never span groups.

use crate::params::RangeExtension;
use tricluster_bitset::{BitSet, BitSetPool};

/// How a range was produced (paper Figure 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeKind {
    /// A maximal valid window (width ≤ ε).
    Valid,
    /// A chain of overlapping valid windows, total width ≤ 2ε.
    Extended,
    /// A block of width ≤ 2ε cut from a wide extended range.
    Split,
    /// An overlapping block offset by ε covering a split boundary.
    Patched,
}

/// Sign group of the ratios in a range (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignGroup {
    /// `d_xa` and `d_xb` share a sign, ratio positive.
    Positive,
    /// `d_xa > 0 > d_xb`, ratio negative.
    PosNeg,
    /// `d_xa < 0 < d_xb`, ratio negative.
    NegPos,
}

impl SignGroup {
    /// Classifies a value pair; `None` when either value is zero or
    /// non-finite (such cells are excluded from ranges — preprocessing
    /// replaces zeros beforehand).
    pub fn classify(va: f64, vb: f64) -> Option<SignGroup> {
        if !va.is_finite() || !vb.is_finite() || va == 0.0 || vb == 0.0 {
            return None;
        }
        Some(match (va > 0.0, vb > 0.0) {
            (true, true) | (false, false) => SignGroup::Positive,
            (true, false) => SignGroup::PosNeg,
            (false, true) => SignGroup::NegPos,
        })
    }

    /// Sign of the ratios in this group: `+1` or `-1`.
    pub fn ratio_sign(self) -> i8 {
        match self {
            SignGroup::Positive => 1,
            SignGroup::PosNeg | SignGroup::NegPos => -1,
        }
    }
}

/// A ratio range between two sample columns, with the genes whose ratios
/// fall inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRange {
    /// Lower bound of `|ratio|`.
    pub lo: f64,
    /// Upper bound of `|ratio|`.
    pub hi: f64,
    /// Sign group of the grouped genes.
    pub sign: SignGroup,
    /// Provenance of the range.
    pub kind: RangeKind,
    /// Genes whose ratio lies in `[lo, hi]` (bitset over the gene universe).
    pub genes: BitSet,
}

impl RatioRange {
    /// The multigraph edge weight `w = r_u / r_l` from the paper.
    pub fn weight(&self) -> f64 {
        self.hi / self.lo
    }
}

// ------------------------------------------------------------ packed keys --
//
// The per-group ratio sort is the hottest comparison site in the miner.
// Ratios reaching the sort are always positive and finite (the finder
// filters first), and for positive finite floats the IEEE-754 bit pattern
// is monotone in the value: `a <= b  ⟺  a.to_bits() <= b.to_bits()`.
// Packing the ratio bits and the gene index into one integer turns the
// `(ratio, gene)` sort into a plain integer sort — no `total_cmp` callback
// per comparison — distributed into value buckets by [`bucket_sort`]. Ties
// break by gene index instead of input order, which cannot change any
// emitted range: every window boundary is a value comparison (`<=` / `<`
// on the ratio), so an equal-value run is always in or out of a window as
// a whole, and a window's gene-*set* and `lo`/`hi` bounds are order-free.
//
// Two key widths, chosen per call:
//
// * **Compact `u64`** — `(ratio_bits − min_bits) << gene_bits | gene`,
//   packed after a cheap min/max pre-pass. The whole key fits in 64 bits
//   whenever the bit-pattern span leaves `gene_bits` of headroom, which
//   covers every realistic ratio distribution (a span of 2⁵⁵ already
//   spans a factor-of-8 ratio spread at 4096 genes). Half the scatter
//   traffic, cheaper compares, and sequential gene extraction compared to
//   the wide key.
// * **Wide `u128`** — `ratio_bits << 64 | gene`, the exact fallback for
//   pathological spans (subnormals next to huge ratios).
//
// Both sort by the identical `(value, gene)` order, so the sorted
// sequences — and hence the emitted ranges — are byte-identical.

#[inline]
fn pack_key(ratio_bits: u64, gene: u32) -> u128 {
    ((ratio_bits as u128) << 64) | gene as u128
}

#[inline]
fn key_value(key: u128) -> f64 {
    f64::from_bits((key >> 64) as u64)
}

#[inline]
fn key_gene(key: u128) -> usize {
    key as u64 as usize
}

/// Sorts packed keys by distributing them into `≈n` buckets via a monotone
/// linear map of the bit pattern, then fixing intra-bucket order locally.
/// For positive floats the bit pattern is roughly linear in `log2(value)`,
/// and the pair kernel's ratio arrays are near-uniform in log space, so
/// buckets stay small and the sort is ~O(n) with small constants —
/// measurably faster than `sort_unstable`'s pdqsort on packed keys.
///
/// `hi` must be a monotone map of the key onto the **full** `u64` scale
/// (range-normalized and shifted to the top bit); the bucket index keeps
/// the high half of its widening product with `nb` — one multiply per key,
/// no division.
///
/// Keys are unique (the rank/gene half differs), so a sorted array is
/// unique and this produces the byte-identical result to
/// `keys.sort_unstable()` — the skewed-input fallbacks below simply call
/// it directly.
fn bucket_sort<K: Copy + Ord + Default>(
    keys: &mut Vec<K>,
    scratch: &mut Vec<K>,
    counts: &mut Vec<u32>,
    hi: impl Fn(K) -> u64,
) {
    let n = keys.len();
    if n < 48 {
        keys.sort_unstable();
        return;
    }
    let nb = n;
    counts.clear();
    counts.resize(nb + 1, 0);
    let bucket = |k: K| -> usize { ((hi(k) as u128 * nb as u128) >> 64) as usize };
    for &k in keys.iter() {
        counts[bucket(k)] += 1;
    }
    bucket_scatter_fixup(keys, scratch, counts, hi);
}

/// The distribution half of [`bucket_sort`], split out so the hot compact
/// path can build the histogram *during* key packing (one fewer traversal
/// of the key array). `counts` must hold the per-bucket histogram over
/// `nb = counts.len() - 1` buckets of `bucket(k) = (hi(k)·nb) >> 64`.
fn bucket_scatter_fixup<K: Copy + Ord + Default>(
    keys: &mut Vec<K>,
    scratch: &mut Vec<K>,
    counts: &mut [u32],
    hi: impl Fn(K) -> u64,
) {
    let n = keys.len();
    let nb = counts.len() - 1;
    let bucket = |k: K| -> usize { ((hi(k) as u128 * nb as u128) >> 64) as usize };
    let mut acc = 0u32;
    let mut max_bucket = 0u32;
    for c in counts.iter_mut() {
        let v = *c;
        max_bucket = max_bucket.max(v);
        *c = acc;
        acc += v;
    }
    // Heavily tied or clumped inputs concentrate in few buckets; local
    // fix-up would degenerate there, and pdqsort handles such patterns well.
    if max_bucket as usize > 32 + n / 4 {
        keys.sort_unstable();
        return;
    }
    // Grow-only resize: every slot in 0..n is written by the scatter below
    // (the offsets are a permutation), so stale contents never survive.
    if scratch.len() < n {
        scratch.resize(n, K::default());
    }
    for &k in keys.iter() {
        let b = bucket(k);
        scratch[counts[b] as usize] = k;
        counts[b] += 1;
    }
    // Buckets are mutually ordered; only intra-bucket order is left to fix.
    let mut start = 0usize;
    for &c in counts.iter().take(nb) {
        let end = c as usize;
        let run = &mut scratch[start..end];
        if run.len() > 24 {
            run.sort_unstable();
        } else if run.len() > 1 {
            insertion_sort(run);
        }
        start = end;
    }
    scratch.truncate(n);
    std::mem::swap(keys, scratch);
}

/// Plain insertion sort for the short runs `bucket_sort` leaves behind —
/// no per-run `sort_unstable` call overhead.
fn insertion_sort<K: Copy + Ord>(run: &mut [K]) {
    for i in 1..run.len() {
        let k = run[i];
        let mut j = i;
        while j > 0 && run[j - 1] > k {
            run[j] = run[j - 1];
            j -= 1;
        }
        run[j] = k;
    }
}

/// Reusable buffers for [`find_ranges_into`].
///
/// Keep one per worker thread: the sort keys, window list, chain list, and
/// dedupe scratch survive across calls, and the gene-set [`BitSetPool`]
/// recycles block storage from deduped ranges, so the per-pair hot path
/// stops round-tripping the global allocator.
#[derive(Debug, Default)]
pub struct RangeScratch {
    /// Compact `(value_delta, gene)` sort keys (see the module comment on
    /// the monotone bit transform and the two key widths).
    keys64: Vec<u64>,
    /// Wide `(ratio_bits, gene)` sort keys — fallback representation when
    /// the value span leaves no headroom for the gene field.
    keys: Vec<u128>,
    /// The sorted ratio values as plain doubles, so the window walk and
    /// split/patch fences compare `f64`s instead of packed keys.
    vals: Vec<f64>,
    /// Gene ids in sorted order — what range emission consumes.
    genes_sorted: Vec<u32>,
    /// Double-buffers for [`bucket_sort`]'s scatter pass.
    sort_scratch64: Vec<u64>,
    sort_scratch: Vec<u128>,
    /// Bucket offsets for [`bucket_sort`].
    counts: Vec<u32>,
    windows: Vec<(usize, usize)>,
    chains: Vec<(usize, usize, usize)>,
    dedupe: Vec<(u64, u32)>,
    doomed: Vec<u32>,
    pool: BitSetPool,
}

/// Finds all ranges for one sign group.
///
/// `ratios` are `(|ratio|, gene)` pairs (all the same [`SignGroup`]); they do
/// not need to be pre-sorted. `n_genes` is the gene universe size for the
/// produced bitsets.
///
/// Convenience wrapper over [`find_ranges_into`] with one-shot buffers.
pub fn find_ranges(
    ratios: &[(f64, usize)],
    sign: SignGroup,
    epsilon: f64,
    mx: usize,
    n_genes: usize,
    extension: RangeExtension,
) -> Vec<RatioRange> {
    let mut scratch = RangeScratch::default();
    let mut out = Vec::new();
    find_ranges_into(
        ratios,
        sign,
        epsilon,
        mx,
        n_genes,
        extension,
        &mut scratch,
        &mut out,
    );
    out
}

/// Finds all ranges for one sign group, appending them to `out`.
///
/// Like [`find_ranges`], but reuses the caller's [`RangeScratch`] and output
/// vector. Deduplication by gene-set applies to the ranges appended by this
/// call only — earlier contents of `out` are never touched.
#[allow(clippy::too_many_arguments)]
pub fn find_ranges_into(
    ratios: &[(f64, usize)],
    sign: SignGroup,
    epsilon: f64,
    mx: usize,
    n_genes: usize,
    extension: RangeExtension,
    scratch: &mut RangeScratch,
    out: &mut Vec<RatioRange>,
) {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    assert!(mx >= 1, "mx must be >= 1");
    let RangeScratch {
        keys64,
        keys,
        vals,
        genes_sorted,
        sort_scratch64,
        sort_scratch,
        counts,
        windows,
        chains,
        dedupe,
        doomed,
        pool,
    } = scratch;
    // Pass 1: count the finite positive ratios and find their bit-pattern
    // extremes — cheap (no stores), and it fixes `min_bits` before packing.
    let mut min_bits = u64::MAX;
    let mut max_bits = 0u64;
    let mut n = 0usize;
    for &(r, _) in ratios {
        if r.is_finite() && r > 0.0 {
            let b = r.to_bits();
            min_bits = min_bits.min(b);
            max_bits = max_bits.max(b);
            n += 1;
        }
    }
    if n < mx {
        return;
    }
    let span = max_bits - min_bits;
    // Bits needed to hold any gene id 0..n_genes-1 (≥ 1 to keep the bucket
    // map's shift in range for a single-gene universe).
    let gene_bits = 64 - (n_genes.max(2) as u64 - 1).leading_zeros();
    vals.clear();
    genes_sorted.clear();
    if span.leading_zeros() >= gene_bits {
        // Compact u64 keys: value delta in the high bits, gene in the low
        // bits — same (value, gene) order as the wide key.
        //
        // With span == 0 the value half is zero and the map buckets by
        // gene — uniform, so no degenerate case to special-feed.
        let max_key = (span << gene_bits) | (n_genes.max(2) as u64 - 1);
        let lz = max_key.leading_zeros();
        keys64.clear();
        if n < 48 {
            keys64.extend(
                ratios
                    .iter()
                    .filter(|&&(r, _)| r.is_finite() && r > 0.0)
                    .map(|&(r, g)| ((r.to_bits() - min_bits) << gene_bits) | g as u64),
            );
            keys64.sort_unstable();
        } else {
            // Pass 2 packs and histograms in one traversal; the
            // scatter/fix-up half of the bucket sort takes over from there.
            let nb = n;
            counts.clear();
            counts.resize(nb + 1, 0);
            for &(r, g) in ratios {
                if r.is_finite() && r > 0.0 {
                    let k = ((r.to_bits() - min_bits) << gene_bits) | g as u64;
                    counts[(((k << lz) as u128 * nb as u128) >> 64) as usize] += 1;
                    keys64.push(k);
                }
            }
            bucket_scatter_fixup(keys64, sort_scratch64, counts, |k| k << lz);
        }
        // Two exact-size extends (not one fused loop): each vectorizes on
        // its own and skips per-push capacity checks.
        let gene_mask = (1u64 << gene_bits) - 1;
        vals.extend(
            keys64
                .iter()
                .map(|&k| f64::from_bits((k >> gene_bits) + min_bits)),
        );
        genes_sorted.extend(keys64.iter().map(|&k| (k & gene_mask) as u32));
    } else {
        // Wide fallback: pathological spans (subnormal next to huge).
        keys.clear();
        keys.extend(
            ratios
                .iter()
                .filter(|&&(r, _)| r.is_finite() && r > 0.0)
                .map(|&(r, g)| pack_key(r.to_bits(), g as u32)),
        );
        let shift = span.leading_zeros();
        bucket_sort(keys, sort_scratch, counts, |k| {
            ((k >> 64) as u64 - min_bits) << shift
        });
        vals.extend(keys.iter().map(|&k| key_value(k)));
        genes_sorted.extend(keys.iter().map(|&k| key_gene(k) as u32));
    }

    // Maximal ε-windows. A window starting at `l` extends to the largest
    // `r` with ratio[r-1] <= ratio[l]*(1+ε) and must span at least `mx`
    // genes, so `vals[l + mx - 1] <= vals[l]*(1+ε)` is a one-compare
    // qualification test that skips the right-end scan for the (typically
    // dominant) share of `l` positions that cannot seed a window.
    //
    // Maximality — the window not being contained in the window at `l-1`,
    // i.e. `r(l) > r(l-1)` — reduces to `r(l) > r(last qualifying l')`:
    // if `r(l) == r(l-1)` then the window at `l-1` is strictly larger, so
    // it also spans ≥ mx genes and qualifies, making `l' = l-1`; and
    // conversely `r` is monotone in `l`, so `r(l') <= r(l-1)`.
    windows.clear(); // half-open [l, r)
    let eps1 = 1.0 + epsilon;
    let mut r = 0usize;
    let mut last_r = 0usize;
    for l in 0..=n - mx {
        let bound = vals[l] * eps1;
        if vals[l + mx - 1] > bound {
            continue;
        }
        if r < l + mx {
            r = l + mx;
        }
        while r < n && vals[r] <= bound {
            r += 1;
        }
        if windows.is_empty() || r > last_r {
            windows.push((l, r));
            last_r = r;
        }
    }
    if windows.is_empty() {
        return;
    }

    let genes_sorted: &[u32] = genes_sorted;
    let vals: &[f64] = vals;
    let mut make_range = |lo_i: usize, hi_i: usize, kind: RangeKind| -> RatioRange {
        // indices half-open [lo_i, hi_i); genes are in-universe by the
        // caller's contract (debug-asserted in the pool fill).
        let genes = pool.alloc_from_indices(
            n_genes,
            genes_sorted[lo_i..hi_i].iter().map(|&g| g as usize),
        );
        RatioRange {
            lo: vals[lo_i],
            hi: vals[hi_i - 1],
            sign,
            kind,
            genes,
        }
    };

    let start = out.len();
    if extension == RangeExtension::Off {
        for &(l, r) in windows.iter() {
            out.push(make_range(l, r, RangeKind::Valid));
        }
        dedupe_by_genes(out, start, dedupe, doomed, pool);
        return;
    }

    // Chain overlapping windows into extended ranges.
    chains.clear(); // (lo, hi, windows)
    let (mut lo, mut hi, mut count) = (windows[0].0, windows[0].1, 1usize);
    for &(l, r) in &windows[1..] {
        if l < hi {
            hi = hi.max(r);
            count += 1;
        } else {
            chains.push((lo, hi, count));
            lo = l;
            hi = r;
            count = 1;
        }
    }
    chains.push((lo, hi, count));

    for &(lo, hi, nwin) in chains.iter() {
        if nwin == 1 {
            out.push(make_range(lo, hi, RangeKind::Valid));
            continue;
        }
        let width = vals[hi - 1] / vals[lo] - 1.0;
        if width <= 2.0 * epsilon {
            out.push(make_range(lo, hi, RangeKind::Extended));
            continue;
        }
        // Wide extended range: cover with split blocks of width ≤ 2ε plus
        // patched blocks centered on the split boundaries.
        split_and_patch(&vals[lo..hi], lo, epsilon, mx, &mut make_range, out);
    }
    dedupe_by_genes(out, start, dedupe, doomed, pool);
}

/// Re-covers `segment` (a slice of the sorted ratio array starting at
/// absolute index `base`, forming one wide extended range) with:
///
/// * greedy *split* blocks — each anchored at the first uncovered ratio and
///   extending a multiplicative `2ε` — and
/// * one *patched* block per split boundary, spanning `[v/(1+ε), v·(1+ε)]`
///   (width `(1+ε)² − 1 = 2ε + ε²`)
///   around the boundary ratio `v`, so that any two genes within `ε` of each
///   other still co-occur in at least one range.
///
/// Blocks spanning fewer than `mx` genes cannot seed a cluster and are not
/// emitted.
fn split_and_patch(
    segment: &[f64],
    base: usize,
    epsilon: f64,
    mx: usize,
    make_range: &mut dyn FnMut(usize, usize, RangeKind) -> RatioRange,
    out: &mut Vec<RatioRange>,
) {
    debug_assert!(epsilon > 0.0, "wide chains require a positive epsilon");
    // All fences below are plain `f64` comparisons on the sorted values:
    // every segment value is positive and finite, and a bound can only
    // degenerate to `+inf` (overflowing upper bound — above every value) or
    // `0.0` (subnormal center divided by `1+ε` — below every value), both
    // of which compare exactly.
    let factor = 1.0 + 2.0 * epsilon;
    let mut boundaries: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < segment.len() {
        let hi = segment[i] * factor;
        let j = segment.partition_point(|&v| v <= hi);
        debug_assert!(j > i);
        if j - i >= mx {
            out.push(make_range(base + i, base + j, RangeKind::Split));
        }
        if j < segment.len() {
            boundaries.push(j);
        }
        i = j;
    }
    for &j in &boundaries {
        let center = segment[j];
        let lo_v = center / (1.0 + epsilon);
        let hi_v = center * (1.0 + epsilon);
        let a = segment.partition_point(|&v| v < lo_v);
        let b = segment.partition_point(|&v| v <= hi_v);
        if b - a >= mx {
            out.push(make_range(base + a, base + b, RangeKind::Patched));
        }
    }
}

/// Removes ranges in `ranges[start..]` whose gene-set duplicates an earlier
/// range's within that tail (the duplicate would generate identical clusters
/// downstream). First occurrences survive in their original order; entries
/// before `start` are never examined or removed.
///
/// Duplicate detection folds each gene-set's blocks through a 64-bit
/// FNV-1a-style hash into the reused `hashes` scratch, sorts the
/// `(hash, tail_index)` pairs, and exact-compares block slices only within
/// equal-hash runs — no per-call `HashSet`, no SipHash, no allocation after
/// warm-up. Doomed duplicates hand their block storage back to `pool`.
fn dedupe_by_genes(
    ranges: &mut Vec<RatioRange>,
    start: usize,
    hashes: &mut Vec<(u64, u32)>,
    doomed: &mut Vec<u32>,
    pool: &mut BitSetPool,
) {
    if ranges.len() - start < 2 {
        return;
    }
    hashes.clear();
    hashes.extend(
        ranges[start..]
            .iter()
            .enumerate()
            .map(|(i, r)| (hash_blocks(r.genes.as_blocks()), i as u32)),
    );
    hashes.sort_unstable();
    doomed.clear();
    let mut run = 0usize;
    for i in 1..hashes.len() {
        if hashes[i].0 != hashes[run].0 {
            run = i;
            continue;
        }
        // Equal gene-sets hash equal, so every duplicate lands in one run;
        // the exact compare guards against collisions. Any earlier equal
        // entry dooms this one — even an already-doomed entry, which in
        // turn equals a kept one (equality is transitive).
        let genes = ranges[start + hashes[i].1 as usize].genes.as_blocks();
        if hashes[run..i]
            .iter()
            .any(|&(_, j)| ranges[start + j as usize].genes.as_blocks() == genes)
        {
            doomed.push(hashes[i].1);
        }
    }
    if doomed.is_empty() {
        return;
    }
    doomed.sort_unstable();
    for &t in doomed.iter().rev() {
        let dup = ranges.remove(start + t as usize);
        pool.recycle(dup.genes);
    }
}

/// 64-bit FNV-1a folded a block at a time rather than a byte at a time —
/// dedupe only needs a stable, well-mixed fingerprint (the exact compare
/// above backs it), and one multiply per `u64` is 8× fewer than bytewise.
#[inline]
fn hash_blocks(blocks: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in blocks {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The pre-packed-key range finder, kept verbatim as a differential oracle:
/// property tests check that the packed-key hot path emits byte-identical
/// ranges for arbitrary inputs (ties, subnormals, negatives, all sign
/// groups). Compiled for tests only.
#[cfg(test)]
pub(crate) mod oracle {
    use super::{RangeExtension, RangeKind, RatioRange, SignGroup};
    use tricluster_bitset::BitSet;

    /// Old `find_ranges`: comparison sort via `f64::total_cmp` (stable, so
    /// ties keep input order), per-call `HashSet` dedupe, per-range
    /// `BitSet::from_indices`.
    pub fn find_ranges(
        ratios: &[(f64, usize)],
        sign: SignGroup,
        epsilon: f64,
        mx: usize,
        n_genes: usize,
        extension: RangeExtension,
    ) -> Vec<RatioRange> {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        assert!(mx >= 1, "mx must be >= 1");
        let mut sorted: Vec<(f64, usize)> = ratios
            .iter()
            .copied()
            .filter(|(r, _)| r.is_finite() && *r > 0.0)
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n = sorted.len();
        let mut out = Vec::new();
        if n < mx {
            return out;
        }

        let mut windows: Vec<(usize, usize)> = Vec::new();
        let mut r = 0usize;
        let mut prev_r = 0usize;
        for l in 0..n {
            if r < l {
                r = l;
            }
            let bound = sorted[l].0 * (1.0 + epsilon);
            while r < n && sorted[r].0 <= bound {
                r += 1;
            }
            let is_maximal = l == 0 || r > prev_r;
            if is_maximal && r - l >= mx {
                windows.push((l, r));
            }
            prev_r = r;
        }
        if windows.is_empty() {
            return out;
        }

        let sorted: &[(f64, usize)] = &sorted;
        let make_range = |lo_i: usize, hi_i: usize, kind: RangeKind| -> RatioRange {
            let genes = BitSet::from_indices(n_genes, sorted[lo_i..hi_i].iter().map(|&(_, g)| g));
            RatioRange {
                lo: sorted[lo_i].0,
                hi: sorted[hi_i - 1].0,
                sign,
                kind,
                genes,
            }
        };

        if extension == RangeExtension::Off {
            for &(l, r) in windows.iter() {
                out.push(make_range(l, r, RangeKind::Valid));
            }
            dedupe_by_genes(&mut out);
            return out;
        }

        let mut chains: Vec<(usize, usize, usize)> = Vec::new();
        let (mut lo, mut hi, mut count) = (windows[0].0, windows[0].1, 1usize);
        for &(l, r) in &windows[1..] {
            if l < hi {
                hi = hi.max(r);
                count += 1;
            } else {
                chains.push((lo, hi, count));
                lo = l;
                hi = r;
                count = 1;
            }
        }
        chains.push((lo, hi, count));

        for &(lo, hi, nwin) in chains.iter() {
            if nwin == 1 {
                out.push(make_range(lo, hi, RangeKind::Valid));
                continue;
            }
            let width = sorted[hi - 1].0 / sorted[lo].0 - 1.0;
            if width <= 2.0 * epsilon {
                out.push(make_range(lo, hi, RangeKind::Extended));
                continue;
            }
            split_and_patch(&sorted[lo..hi], lo, epsilon, mx, &make_range, &mut out);
        }
        dedupe_by_genes(&mut out);
        out
    }

    fn split_and_patch(
        segment: &[(f64, usize)],
        base: usize,
        epsilon: f64,
        mx: usize,
        make_range: &dyn Fn(usize, usize, RangeKind) -> RatioRange,
        out: &mut Vec<RatioRange>,
    ) {
        let factor = 1.0 + 2.0 * epsilon;
        let mut boundaries: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < segment.len() {
            let hi = segment[i].0 * factor;
            let j = segment.partition_point(|&(v, _)| v <= hi);
            if j - i >= mx {
                out.push(make_range(base + i, base + j, RangeKind::Split));
            }
            if j < segment.len() {
                boundaries.push(j);
            }
            i = j;
        }
        for &j in &boundaries {
            let center = segment[j].0;
            let lo_v = center / (1.0 + epsilon);
            let hi_v = center * (1.0 + epsilon);
            let a = segment.partition_point(|&(v, _)| v < lo_v);
            let b = segment.partition_point(|&(v, _)| v <= hi_v);
            if b - a >= mx {
                out.push(make_range(base + a, base + b, RangeKind::Patched));
            }
        }
    }

    fn dedupe_by_genes(ranges: &mut Vec<RatioRange>) {
        let keep: Vec<bool> = {
            let mut seen: std::collections::HashSet<&[u64]> =
                std::collections::HashSet::with_capacity(ranges.len());
            ranges
                .iter()
                .map(|r| seen.insert(r.genes.as_blocks()))
                .collect()
        };
        let mut idx = 0usize;
        ranges.retain(|_| {
            let keep_this = keep[idx];
            idx += 1;
            keep_this
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(
        ratios: &[(f64, usize)],
        eps: f64,
        mx: usize,
        ext: RangeExtension,
    ) -> Vec<RatioRange> {
        find_ranges(ratios, SignGroup::Positive, eps, mx, 64, ext)
    }

    /// Paper Figure 1(a): sorted ratios of column s0/s6 at time t0.
    /// g1,g4,g8 -> 3.0; g3,g5 -> 3.3; g0 -> 3.6.
    fn paper_fig1() -> Vec<(f64, usize)> {
        vec![(3.0, 1), (3.0, 4), (3.0, 8), (3.3, 3), (3.3, 5), (3.6, 0)]
    }

    #[test]
    fn paper_example_eps_001_single_range() {
        // ε=0.01, mx=3: only [3.0, 3.0] with genes {g1,g4,g8} is valid.
        let rs = ranges(&paper_fig1(), 0.01, 3, RangeExtension::On);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].lo, 3.0);
        assert_eq!(rs[0].hi, 3.0);
        assert_eq!(rs[0].genes.to_vec(), vec![1, 4, 8]);
        assert_eq!(rs[0].kind, RangeKind::Valid);
    }

    #[test]
    fn paper_example_eps_01_two_overlapping_ranges() {
        // ε=0.1: the paper reports [3.0,3.3] {g1,g4,g8,g3,g5} and
        // [3.3,3.6] {g3,g5,g0}. With mx=3 only the first window has ≥3
        // genes... the second has exactly 3.
        let rs = ranges(&paper_fig1(), 0.1, 3, RangeExtension::Off);
        assert_eq!(rs.len(), 2, "{rs:?}");
        assert_eq!(rs[0].genes.to_vec(), vec![1, 3, 4, 5, 8]);
        assert_eq!((rs[0].lo, rs[0].hi), (3.0, 3.3));
        assert_eq!(rs[1].genes.to_vec(), vec![0, 3, 5]);
        assert_eq!((rs[1].lo, rs[1].hi), (3.3, 3.6));
    }

    #[test]
    fn paper_example_eps_01_extension_merges() {
        // With extension on, the two overlapping windows chain into one
        // extended range [3.0,3.6]; width 0.2 ≤ 2ε, single Extended range.
        let rs = ranges(&paper_fig1(), 0.1, 3, RangeExtension::On);
        assert_eq!(rs.len(), 1, "{rs:?}");
        assert_eq!(rs[0].kind, RangeKind::Extended);
        assert_eq!((rs[0].lo, rs[0].hi), (3.0, 3.6));
        assert_eq!(rs[0].genes.count(), 6);
    }

    #[test]
    fn too_few_genes_no_range() {
        let rs = ranges(&[(1.0, 0), (1.0, 1)], 0.01, 3, RangeExtension::On);
        assert!(rs.is_empty());
    }

    #[test]
    fn empty_input() {
        let rs = ranges(&[], 0.01, 1, RangeExtension::On);
        assert!(rs.is_empty());
    }

    #[test]
    fn far_apart_clusters_give_separate_ranges() {
        let data = vec![
            (1.0, 0),
            (1.0, 1),
            (1.005, 2),
            (5.0, 3),
            (5.0, 4),
            (5.02, 5),
        ];
        let rs = ranges(&data, 0.01, 3, RangeExtension::On);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].genes.to_vec(), vec![0, 1, 2]);
        assert_eq!(rs[1].genes.to_vec(), vec![3, 4, 5]);
        assert!(rs.iter().all(|r| r.kind == RangeKind::Valid));
    }

    #[test]
    fn maximality_no_window_contained_in_another() {
        // windows must not report [l+1, r) when [l, r) exists
        let data: Vec<(f64, usize)> = (0..6).map(|i| (1.0 + 0.001 * i as f64, i)).collect();
        let rs = ranges(&data, 0.01, 2, RangeExtension::Off);
        assert_eq!(rs.len(), 1, "one maximal window covering all: {rs:?}");
        assert_eq!(rs[0].genes.count(), 6);
    }

    #[test]
    fn eps_zero_groups_exact_ties_only() {
        let data = vec![(2.0, 0), (2.0, 1), (2.0, 2), (2.5, 3), (2.5, 4)];
        let rs = ranges(&data, 0.0, 2, RangeExtension::On);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].genes.to_vec(), vec![0, 1, 2]);
        assert_eq!(rs[1].genes.to_vec(), vec![3, 4]);
        assert!((rs[0].weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_chain_produces_split_and_patched() {
        // A dense arithmetic chain: every adjacent pair within ε but the
        // whole chain much wider than 2ε.
        let data: Vec<(f64, usize)> = (0..16)
            .map(|i| (1.0f64 * 1.04f64.powi(i), i as usize))
            .collect();
        let rs = ranges(&data, 0.05, 2, RangeExtension::On);
        assert!(
            rs.iter().any(|r| r.kind == RangeKind::Split),
            "expected split blocks: {rs:?}"
        );
        assert!(
            rs.iter().any(|r| r.kind == RangeKind::Patched),
            "expected patched blocks: {rs:?}"
        );
        // Every gene is covered by at least one emitted range.
        let mut covered = BitSet::new(64);
        for r in &rs {
            covered.union_with(&r.genes);
        }
        assert_eq!(covered.count(), 16, "no gene lost by splitting: {rs:?}");
        // Every block respects the 2ε width bound.
        for r in &rs {
            if matches!(r.kind, RangeKind::Split | RangeKind::Patched) {
                assert!(
                    r.hi / r.lo - 1.0 <= 2.0 * 0.05 + 1e-9,
                    "block too wide: {r:?}"
                );
            }
        }
    }

    #[test]
    fn adjacent_pairs_consecutive_blocks_share_genes_via_patching() {
        // Genes right at a split boundary must appear together in some range
        // (that is the point of patched ranges).
        let data: Vec<(f64, usize)> = (0..20)
            .map(|i| (1.0f64 * 1.03f64.powi(i), i as usize))
            .collect();
        let rs = ranges(&data, 0.05, 2, RangeExtension::On);
        for w in 0..19usize {
            let together = rs
                .iter()
                .any(|r| r.genes.contains(w) && r.genes.contains(w + 1));
            assert!(
                together,
                "adjacent genes {w},{} (ratio gap 3% < ε) never co-occur: {rs:?}",
                w + 1
            );
        }
    }

    #[test]
    fn duplicate_genesets_are_removed() {
        let data = vec![(1.0, 0), (1.0, 1), (1.0, 2)];
        let rs = ranges(&data, 0.5, 2, RangeExtension::On);
        assert_eq!(rs.len(), 1);
    }

    fn dummy_range(lo: f64, genes: &[usize]) -> RatioRange {
        RatioRange {
            lo,
            hi: lo,
            sign: SignGroup::Positive,
            kind: RangeKind::Valid,
            genes: BitSet::from_indices(16, genes.iter().copied()),
        }
    }

    fn dedupe(rs: &mut Vec<RatioRange>, start: usize) {
        let mut hashes = Vec::new();
        let mut doomed = Vec::new();
        let mut pool = BitSetPool::new();
        dedupe_by_genes(rs, start, &mut hashes, &mut doomed, &mut pool);
    }

    #[test]
    fn dedupe_keeps_first_occurrence_in_order() {
        // Sets A, B, A, C, B, D -> survivors A, B, C, D; the surviving A/B
        // are the *first* occurrences (identified by their lo values).
        let mut rs = vec![
            dummy_range(1.0, &[0, 1]), // A
            dummy_range(2.0, &[2, 3]), // B
            dummy_range(3.0, &[0, 1]), // A dup
            dummy_range(4.0, &[4]),    // C
            dummy_range(5.0, &[2, 3]), // B dup
            dummy_range(6.0, &[5, 6]), // D
        ];
        dedupe(&mut rs, 0);
        let los: Vec<f64> = rs.iter().map(|r| r.lo).collect();
        assert_eq!(los, vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn dedupe_tail_only_never_touches_head() {
        // Head entries (before `start`) are kept even when the tail repeats
        // their gene-sets; dedup applies within the tail alone.
        let mut rs = vec![
            dummy_range(1.0, &[0, 1]), // head A
            dummy_range(2.0, &[0, 1]), // tail A (first in tail -> kept)
            dummy_range(3.0, &[0, 1]), // tail A dup -> removed
            dummy_range(4.0, &[2]),    // tail C -> kept
        ];
        dedupe(&mut rs, 1);
        let los: Vec<f64> = rs.iter().map(|r| r.lo).collect();
        assert_eq!(los, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn dedupe_recycles_doomed_genesets_into_pool() {
        let mut rs = vec![
            dummy_range(1.0, &[0, 1]),
            dummy_range(2.0, &[0, 1]), // dup -> recycled
            dummy_range(3.0, &[0, 1]), // dup -> recycled
        ];
        let mut hashes = Vec::new();
        let mut doomed = Vec::new();
        let mut pool = BitSetPool::new();
        dedupe_by_genes(&mut rs, 0, &mut hashes, &mut doomed, &mut pool);
        assert_eq!(rs.len(), 1);
        assert_eq!(pool.free_len(), 2, "doomed block storage returns to pool");
    }

    #[test]
    fn find_ranges_into_reuses_scratch_and_appends() {
        // Same results as find_ranges when the scratch and output vec are
        // reused across calls with different inputs.
        let data1 = paper_fig1();
        let data2 = vec![(2.0, 10), (2.0, 11), (2.5, 12), (2.5, 13)];
        let mut scratch = RangeScratch::default();
        let mut out = Vec::new();
        find_ranges_into(
            &data1,
            SignGroup::Positive,
            0.1,
            3,
            64,
            RangeExtension::On,
            &mut scratch,
            &mut out,
        );
        let after_first = out.len();
        assert_eq!(
            out,
            find_ranges(&data1, SignGroup::Positive, 0.1, 3, 64, RangeExtension::On)
        );
        find_ranges_into(
            &data2,
            SignGroup::Positive,
            0.0,
            2,
            64,
            RangeExtension::On,
            &mut scratch,
            &mut out,
        );
        assert_eq!(
            out[after_first..],
            find_ranges(&data2, SignGroup::Positive, 0.0, 2, 64, RangeExtension::On)
        );
    }

    #[test]
    fn nonfinite_and_nonpositive_ratios_ignored() {
        let data = vec![
            (f64::NAN, 0),
            (f64::INFINITY, 1),
            (-1.0, 2),
            (0.0, 3),
            (2.0, 4),
            (2.0, 5),
        ];
        let rs = ranges(&data, 0.01, 2, RangeExtension::On);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].genes.to_vec(), vec![4, 5]);
    }

    // ---------------------------------------- differential oracle tests --

    use proptest::prelude::*;

    /// One generated `(ratio, gene)` entry. The selector steers cases into
    /// the shapes the packed-key transform must survive: plain positives,
    /// exact ties, dense near-tie clusters, subnormals, huge/tiny normals,
    /// and the filtered-out kinds (negatives, zero, inf, NaN).
    fn ratio_entry() -> impl Strategy<Value = (f64, usize)> {
        (0usize..12, 1.0f64..4.0, 0usize..48).prop_map(|(sel, v, g)| {
            let r = match sel {
                0..=2 => v,                       // plain positive
                3 => 2.5,                         // exact tie value
                4 => 1.0 + (g % 7) as f64 * 1e-3, // dense near-tie cluster
                5 => f64::MIN_POSITIVE / 4.0,     // subnormal
                6 => f64::MIN_POSITIVE,           // smallest normal
                7 => v * 1e300,                   // huge (bound hits +inf)
                8 => v * 1e-300,                  // tiny normal
                9 => -v,                          // negative -> filtered
                10 => 0.0,                        // zero -> filtered
                _ => {
                    if g % 2 == 0 {
                        f64::INFINITY
                    } else {
                        f64::NAN
                    }
                } // non-finite -> filtered
            };
            (r, g)
        })
    }

    fn sign_strategy() -> impl Strategy<Value = SignGroup> {
        (0usize..3).prop_map(|s| match s {
            0 => SignGroup::Positive,
            1 => SignGroup::PosNeg,
            _ => SignGroup::NegPos,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Tentpole safety net: the packed-key sort path must emit ranges
        /// byte-identical to the old `total_cmp` path — same values, kinds,
        /// gene-sets, and order — for arbitrary inputs in arbitrary order.
        #[test]
        fn packed_key_path_matches_totalcmp_oracle(
            ratios in proptest::collection::vec(ratio_entry(), 0..60),
            sign in sign_strategy(),
            eps_sel in 0usize..5,
            mx in 1usize..4,
            ext in proptest::bool::ANY,
        ) {
            let epsilon = [0.0, 0.005, 0.02, 0.1, 0.5][eps_sel];
            let extension = if ext { RangeExtension::On } else { RangeExtension::Off };
            // ε=0 exercises the exact-tie fast path (wide chains need ε>0).
            let new = find_ranges(&ratios, sign, epsilon, mx, 48, extension);
            let old = oracle::find_ranges(&ratios, sign, epsilon, mx, 48, extension);
            prop_assert_eq!(
                new.len(), old.len(),
                "range count diverged: eps={} mx={} ext={:?}", epsilon, mx, extension
            );
            for (i, (n, o)) in new.iter().zip(&old).enumerate() {
                prop_assert!(
                    n.lo.to_bits() == o.lo.to_bits()
                        && n.hi.to_bits() == o.hi.to_bits()
                        && n.sign == o.sign
                        && n.kind == o.kind
                        && n.genes == o.genes,
                    "range {} diverged:\n  new {:?}\n  old {:?}", i, n, o
                );
            }
        }

        /// The scratch-reusing entry point stays equivalent to the one-shot
        /// wrapper when called repeatedly with dirty buffers.
        #[test]
        fn scratch_reuse_never_leaks_state_between_calls(
            a in proptest::collection::vec(ratio_entry(), 0..40),
            b in proptest::collection::vec(ratio_entry(), 0..40),
        ) {
            let mut scratch = RangeScratch::default();
            let mut out = Vec::new();
            find_ranges_into(
                &a, SignGroup::Positive, 0.02, 2, 48, RangeExtension::On,
                &mut scratch, &mut out,
            );
            let first = out.len();
            find_ranges_into(
                &b, SignGroup::NegPos, 0.1, 1, 48, RangeExtension::On,
                &mut scratch, &mut out,
            );
            prop_assert_eq!(
                &out[..first],
                &find_ranges(&a, SignGroup::Positive, 0.02, 2, 48, RangeExtension::On)[..]
            );
            prop_assert_eq!(
                &out[first..],
                &find_ranges(&b, SignGroup::NegPos, 0.1, 1, 48, RangeExtension::On)[..]
            );
        }
    }

    /// Pins both key representations at a size that engages the bucket
    /// sort (`n >= 48`): a tight span takes the compact u64 path, and a
    /// subnormal next to a huge ratio forces the wide u128 fallback.
    #[test]
    fn compact_and_wide_key_paths_match_oracle_at_bucket_size() {
        let tight: Vec<(f64, usize)> = (0..96).map(|g| (1.0 + (g % 37) as f64 * 0.01, g)).collect();
        let mut wide = tight.clone();
        wide.push((f64::MIN_POSITIVE / 2.0, 96));
        wide.push((1e300, 97));
        for ratios in [tight, wide] {
            for mx in [2, 25] {
                let new = find_ranges(
                    &ratios,
                    SignGroup::Positive,
                    0.05,
                    mx,
                    128,
                    RangeExtension::On,
                );
                let old = oracle::find_ranges(
                    &ratios,
                    SignGroup::Positive,
                    0.05,
                    mx,
                    128,
                    RangeExtension::On,
                );
                assert_eq!(new, old);
            }
        }
    }

    #[test]
    fn sign_group_classification() {
        assert_eq!(SignGroup::classify(1.0, 2.0), Some(SignGroup::Positive));
        assert_eq!(SignGroup::classify(-1.0, -2.0), Some(SignGroup::Positive));
        assert_eq!(SignGroup::classify(1.0, -2.0), Some(SignGroup::PosNeg));
        assert_eq!(SignGroup::classify(-1.0, 2.0), Some(SignGroup::NegPos));
        assert_eq!(SignGroup::classify(0.0, 2.0), None);
        assert_eq!(SignGroup::classify(1.0, f64::NAN), None);
        assert_eq!(SignGroup::Positive.ratio_sign(), 1);
        assert_eq!(SignGroup::PosNeg.ratio_sign(), -1);
    }
}
