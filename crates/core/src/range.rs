//! Valid ratio ranges (paper §4.1, Figure 1).
//!
//! For a pair of sample columns `(s_a, s_b)` in one time slice, each gene
//! `g_x` has a ratio `r_x = d_xa / d_xb`. A *valid ratio range* `[r_l, r_u]`
//! is a maximal interval of ratios such that
//!
//! 1. `max(|r_u|,|r_l|)/min(|r_u|,|r_l|) − 1 ≤ ε`,
//! 2. it spans at least `mx` genes,
//! 3. negative ratios only group genes whose two column values have a
//!    consistent sign pattern,
//! 4. no further gene can be added while preserving the `ε` bound.
//!
//! Overlapping valid ranges are chained into *extended* ranges; an extended
//! range wider than `2ε` is re-covered by *split* blocks of width at most
//! `2ε` plus overlapping *patched* blocks offset by `ε`, so that no cluster
//! straddling a split boundary is lost (paper Figure 1(b)).
//!
//! ## Sign handling
//!
//! Per the paper's validity condition 2, a *negative* ratio is only
//! meaningful when the columns have consistent signs across the grouped
//! genes. We therefore partition genes into three groups before sorting:
//! positive ratios (covers both `(+,+)` and `(−,−)` value pairs — the paper
//! places no constraint on these), negative ratios with `(+,−)` values, and
//! negative ratios with `(−,+)` values. Ranges never span groups.

use crate::params::RangeExtension;
use tricluster_bitset::BitSet;

/// How a range was produced (paper Figure 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeKind {
    /// A maximal valid window (width ≤ ε).
    Valid,
    /// A chain of overlapping valid windows, total width ≤ 2ε.
    Extended,
    /// A block of width ≤ 2ε cut from a wide extended range.
    Split,
    /// An overlapping block offset by ε covering a split boundary.
    Patched,
}

/// Sign group of the ratios in a range (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignGroup {
    /// `d_xa` and `d_xb` share a sign, ratio positive.
    Positive,
    /// `d_xa > 0 > d_xb`, ratio negative.
    PosNeg,
    /// `d_xa < 0 < d_xb`, ratio negative.
    NegPos,
}

impl SignGroup {
    /// Classifies a value pair; `None` when either value is zero or
    /// non-finite (such cells are excluded from ranges — preprocessing
    /// replaces zeros beforehand).
    pub fn classify(va: f64, vb: f64) -> Option<SignGroup> {
        if !va.is_finite() || !vb.is_finite() || va == 0.0 || vb == 0.0 {
            return None;
        }
        Some(match (va > 0.0, vb > 0.0) {
            (true, true) | (false, false) => SignGroup::Positive,
            (true, false) => SignGroup::PosNeg,
            (false, true) => SignGroup::NegPos,
        })
    }

    /// Sign of the ratios in this group: `+1` or `-1`.
    pub fn ratio_sign(self) -> i8 {
        match self {
            SignGroup::Positive => 1,
            SignGroup::PosNeg | SignGroup::NegPos => -1,
        }
    }
}

/// A ratio range between two sample columns, with the genes whose ratios
/// fall inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRange {
    /// Lower bound of `|ratio|`.
    pub lo: f64,
    /// Upper bound of `|ratio|`.
    pub hi: f64,
    /// Sign group of the grouped genes.
    pub sign: SignGroup,
    /// Provenance of the range.
    pub kind: RangeKind,
    /// Genes whose ratio lies in `[lo, hi]` (bitset over the gene universe).
    pub genes: BitSet,
}

impl RatioRange {
    /// The multigraph edge weight `w = r_u / r_l` from the paper.
    pub fn weight(&self) -> f64 {
        self.hi / self.lo
    }
}

/// Reusable buffers for [`find_ranges_into`].
///
/// Keep one per worker thread: the sort buffer, window list, and chain list
/// survive across calls, so the per-pair hot path allocates nothing beyond
/// the gene-sets of the ranges it actually emits.
#[derive(Debug, Default)]
pub struct RangeScratch {
    sorted: Vec<(f64, usize)>,
    windows: Vec<(usize, usize)>,
    chains: Vec<(usize, usize, usize)>,
}

/// Finds all ranges for one sign group.
///
/// `ratios` are `(|ratio|, gene)` pairs (all the same [`SignGroup`]); they do
/// not need to be pre-sorted. `n_genes` is the gene universe size for the
/// produced bitsets.
///
/// Convenience wrapper over [`find_ranges_into`] with one-shot buffers.
pub fn find_ranges(
    ratios: &[(f64, usize)],
    sign: SignGroup,
    epsilon: f64,
    mx: usize,
    n_genes: usize,
    extension: RangeExtension,
) -> Vec<RatioRange> {
    let mut scratch = RangeScratch::default();
    let mut out = Vec::new();
    find_ranges_into(
        ratios,
        sign,
        epsilon,
        mx,
        n_genes,
        extension,
        &mut scratch,
        &mut out,
    );
    out
}

/// Finds all ranges for one sign group, appending them to `out`.
///
/// Like [`find_ranges`], but reuses the caller's [`RangeScratch`] and output
/// vector. Deduplication by gene-set applies to the ranges appended by this
/// call only — earlier contents of `out` are never touched.
#[allow(clippy::too_many_arguments)]
pub fn find_ranges_into(
    ratios: &[(f64, usize)],
    sign: SignGroup,
    epsilon: f64,
    mx: usize,
    n_genes: usize,
    extension: RangeExtension,
    scratch: &mut RangeScratch,
    out: &mut Vec<RatioRange>,
) {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    assert!(mx >= 1, "mx must be >= 1");
    let RangeScratch {
        sorted,
        windows,
        chains,
    } = scratch;
    sorted.clear();
    sorted.extend(
        ratios
            .iter()
            .copied()
            .filter(|(r, _)| r.is_finite() && *r > 0.0),
    );
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n = sorted.len();
    if n < mx {
        return;
    }

    // Maximal ε-windows via two pointers. Window starting at `l` extends to
    // the largest `r` with ratio[r-1] <= ratio[l]*(1+ε); it is maximal iff it
    // strictly extends the previous window's right end.
    windows.clear(); // half-open [l, r)
    let mut r = 0usize;
    let mut prev_r = 0usize;
    for l in 0..n {
        if r < l {
            r = l;
        }
        let bound = sorted[l].0 * (1.0 + epsilon);
        while r < n && sorted[r].0 <= bound {
            r += 1;
        }
        let is_maximal = l == 0 || r > prev_r;
        if is_maximal && r - l >= mx {
            windows.push((l, r));
        }
        prev_r = r;
    }
    if windows.is_empty() {
        return;
    }

    let sorted: &[(f64, usize)] = sorted;
    let make_range = |lo_i: usize, hi_i: usize, kind: RangeKind| -> RatioRange {
        // indices half-open [lo_i, hi_i)
        let genes = BitSet::from_indices(n_genes, sorted[lo_i..hi_i].iter().map(|&(_, g)| g));
        RatioRange {
            lo: sorted[lo_i].0,
            hi: sorted[hi_i - 1].0,
            sign,
            kind,
            genes,
        }
    };

    let start = out.len();
    if extension == RangeExtension::Off {
        for &(l, r) in windows.iter() {
            out.push(make_range(l, r, RangeKind::Valid));
        }
        dedupe_by_genes(out, start);
        return;
    }

    // Chain overlapping windows into extended ranges.
    chains.clear(); // (lo, hi, windows)
    let (mut lo, mut hi, mut count) = (windows[0].0, windows[0].1, 1usize);
    for &(l, r) in &windows[1..] {
        if l < hi {
            hi = hi.max(r);
            count += 1;
        } else {
            chains.push((lo, hi, count));
            lo = l;
            hi = r;
            count = 1;
        }
    }
    chains.push((lo, hi, count));

    for &(lo, hi, nwin) in chains.iter() {
        if nwin == 1 {
            out.push(make_range(lo, hi, RangeKind::Valid));
            continue;
        }
        let width = sorted[hi - 1].0 / sorted[lo].0 - 1.0;
        if width <= 2.0 * epsilon {
            out.push(make_range(lo, hi, RangeKind::Extended));
            continue;
        }
        // Wide extended range: cover with split blocks of width ≤ 2ε plus
        // patched blocks centered on the split boundaries.
        split_and_patch(&sorted[lo..hi], lo, epsilon, mx, &make_range, out);
    }
    dedupe_by_genes(out, start);
}

/// Re-covers `segment` (a slice of the sorted ratio array starting at
/// absolute index `base`, forming one wide extended range) with:
///
/// * greedy *split* blocks — each anchored at the first uncovered ratio and
///   extending a multiplicative `2ε` — and
/// * one *patched* block per split boundary, spanning `[v/(1+ε), v·(1+ε)]`
///   (width `(1+ε)² − 1 = 2ε + ε²`)
///   around the boundary ratio `v`, so that any two genes within `ε` of each
///   other still co-occur in at least one range.
///
/// Blocks spanning fewer than `mx` genes cannot seed a cluster and are not
/// emitted.
fn split_and_patch(
    segment: &[(f64, usize)],
    base: usize,
    epsilon: f64,
    mx: usize,
    make_range: &dyn Fn(usize, usize, RangeKind) -> RatioRange,
    out: &mut Vec<RatioRange>,
) {
    debug_assert!(epsilon > 0.0, "wide chains require a positive epsilon");
    let factor = 1.0 + 2.0 * epsilon;
    let mut boundaries: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < segment.len() {
        let hi = segment[i].0 * factor;
        let j = segment.partition_point(|&(v, _)| v <= hi);
        debug_assert!(j > i);
        if j - i >= mx {
            out.push(make_range(base + i, base + j, RangeKind::Split));
        }
        if j < segment.len() {
            boundaries.push(j);
        }
        i = j;
    }
    for &j in &boundaries {
        let center = segment[j].0;
        let lo_v = center / (1.0 + epsilon);
        let hi_v = center * (1.0 + epsilon);
        let a = segment.partition_point(|&(v, _)| v < lo_v);
        let b = segment.partition_point(|&(v, _)| v <= hi_v);
        if b - a >= mx {
            out.push(make_range(base + a, base + b, RangeKind::Patched));
        }
    }
}

/// Removes ranges in `ranges[start..]` whose gene-set duplicates an earlier
/// range's within that tail (the duplicate would generate identical clusters
/// downstream). First occurrences survive in their original order; entries
/// before `start` are never examined or removed.
///
/// Duplicate detection hashes the borrowed bitset block slices — no `BitSet`
/// clones, O(tail) expected instead of the former O(tail²) scan.
fn dedupe_by_genes(ranges: &mut Vec<RatioRange>, start: usize) {
    if ranges.len() - start < 2 {
        return;
    }
    let keep: Vec<bool> = {
        let mut seen: std::collections::HashSet<&[u64]> =
            std::collections::HashSet::with_capacity(ranges.len() - start);
        ranges[start..]
            .iter()
            .map(|r| seen.insert(r.genes.as_blocks()))
            .collect()
    };
    let mut idx = 0usize;
    ranges.retain(|_| {
        let keep_this = idx < start || keep[idx - start];
        idx += 1;
        keep_this
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(
        ratios: &[(f64, usize)],
        eps: f64,
        mx: usize,
        ext: RangeExtension,
    ) -> Vec<RatioRange> {
        find_ranges(ratios, SignGroup::Positive, eps, mx, 64, ext)
    }

    /// Paper Figure 1(a): sorted ratios of column s0/s6 at time t0.
    /// g1,g4,g8 -> 3.0; g3,g5 -> 3.3; g0 -> 3.6.
    fn paper_fig1() -> Vec<(f64, usize)> {
        vec![(3.0, 1), (3.0, 4), (3.0, 8), (3.3, 3), (3.3, 5), (3.6, 0)]
    }

    #[test]
    fn paper_example_eps_001_single_range() {
        // ε=0.01, mx=3: only [3.0, 3.0] with genes {g1,g4,g8} is valid.
        let rs = ranges(&paper_fig1(), 0.01, 3, RangeExtension::On);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].lo, 3.0);
        assert_eq!(rs[0].hi, 3.0);
        assert_eq!(rs[0].genes.to_vec(), vec![1, 4, 8]);
        assert_eq!(rs[0].kind, RangeKind::Valid);
    }

    #[test]
    fn paper_example_eps_01_two_overlapping_ranges() {
        // ε=0.1: the paper reports [3.0,3.3] {g1,g4,g8,g3,g5} and
        // [3.3,3.6] {g3,g5,g0}. With mx=3 only the first window has ≥3
        // genes... the second has exactly 3.
        let rs = ranges(&paper_fig1(), 0.1, 3, RangeExtension::Off);
        assert_eq!(rs.len(), 2, "{rs:?}");
        assert_eq!(rs[0].genes.to_vec(), vec![1, 3, 4, 5, 8]);
        assert_eq!((rs[0].lo, rs[0].hi), (3.0, 3.3));
        assert_eq!(rs[1].genes.to_vec(), vec![0, 3, 5]);
        assert_eq!((rs[1].lo, rs[1].hi), (3.3, 3.6));
    }

    #[test]
    fn paper_example_eps_01_extension_merges() {
        // With extension on, the two overlapping windows chain into one
        // extended range [3.0,3.6]; width 0.2 ≤ 2ε, single Extended range.
        let rs = ranges(&paper_fig1(), 0.1, 3, RangeExtension::On);
        assert_eq!(rs.len(), 1, "{rs:?}");
        assert_eq!(rs[0].kind, RangeKind::Extended);
        assert_eq!((rs[0].lo, rs[0].hi), (3.0, 3.6));
        assert_eq!(rs[0].genes.count(), 6);
    }

    #[test]
    fn too_few_genes_no_range() {
        let rs = ranges(&[(1.0, 0), (1.0, 1)], 0.01, 3, RangeExtension::On);
        assert!(rs.is_empty());
    }

    #[test]
    fn empty_input() {
        let rs = ranges(&[], 0.01, 1, RangeExtension::On);
        assert!(rs.is_empty());
    }

    #[test]
    fn far_apart_clusters_give_separate_ranges() {
        let data = vec![
            (1.0, 0),
            (1.0, 1),
            (1.005, 2),
            (5.0, 3),
            (5.0, 4),
            (5.02, 5),
        ];
        let rs = ranges(&data, 0.01, 3, RangeExtension::On);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].genes.to_vec(), vec![0, 1, 2]);
        assert_eq!(rs[1].genes.to_vec(), vec![3, 4, 5]);
        assert!(rs.iter().all(|r| r.kind == RangeKind::Valid));
    }

    #[test]
    fn maximality_no_window_contained_in_another() {
        // windows must not report [l+1, r) when [l, r) exists
        let data: Vec<(f64, usize)> = (0..6).map(|i| (1.0 + 0.001 * i as f64, i)).collect();
        let rs = ranges(&data, 0.01, 2, RangeExtension::Off);
        assert_eq!(rs.len(), 1, "one maximal window covering all: {rs:?}");
        assert_eq!(rs[0].genes.count(), 6);
    }

    #[test]
    fn eps_zero_groups_exact_ties_only() {
        let data = vec![(2.0, 0), (2.0, 1), (2.0, 2), (2.5, 3), (2.5, 4)];
        let rs = ranges(&data, 0.0, 2, RangeExtension::On);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].genes.to_vec(), vec![0, 1, 2]);
        assert_eq!(rs[1].genes.to_vec(), vec![3, 4]);
        assert!((rs[0].weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_chain_produces_split_and_patched() {
        // A dense arithmetic chain: every adjacent pair within ε but the
        // whole chain much wider than 2ε.
        let data: Vec<(f64, usize)> = (0..16)
            .map(|i| (1.0f64 * 1.04f64.powi(i), i as usize))
            .collect();
        let rs = ranges(&data, 0.05, 2, RangeExtension::On);
        assert!(
            rs.iter().any(|r| r.kind == RangeKind::Split),
            "expected split blocks: {rs:?}"
        );
        assert!(
            rs.iter().any(|r| r.kind == RangeKind::Patched),
            "expected patched blocks: {rs:?}"
        );
        // Every gene is covered by at least one emitted range.
        let mut covered = BitSet::new(64);
        for r in &rs {
            covered.union_with(&r.genes);
        }
        assert_eq!(covered.count(), 16, "no gene lost by splitting: {rs:?}");
        // Every block respects the 2ε width bound.
        for r in &rs {
            if matches!(r.kind, RangeKind::Split | RangeKind::Patched) {
                assert!(
                    r.hi / r.lo - 1.0 <= 2.0 * 0.05 + 1e-9,
                    "block too wide: {r:?}"
                );
            }
        }
    }

    #[test]
    fn adjacent_pairs_consecutive_blocks_share_genes_via_patching() {
        // Genes right at a split boundary must appear together in some range
        // (that is the point of patched ranges).
        let data: Vec<(f64, usize)> = (0..20)
            .map(|i| (1.0f64 * 1.03f64.powi(i), i as usize))
            .collect();
        let rs = ranges(&data, 0.05, 2, RangeExtension::On);
        for w in 0..19usize {
            let together = rs
                .iter()
                .any(|r| r.genes.contains(w) && r.genes.contains(w + 1));
            assert!(
                together,
                "adjacent genes {w},{} (ratio gap 3% < ε) never co-occur: {rs:?}",
                w + 1
            );
        }
    }

    #[test]
    fn duplicate_genesets_are_removed() {
        let data = vec![(1.0, 0), (1.0, 1), (1.0, 2)];
        let rs = ranges(&data, 0.5, 2, RangeExtension::On);
        assert_eq!(rs.len(), 1);
    }

    fn dummy_range(lo: f64, genes: &[usize]) -> RatioRange {
        RatioRange {
            lo,
            hi: lo,
            sign: SignGroup::Positive,
            kind: RangeKind::Valid,
            genes: BitSet::from_indices(16, genes.iter().copied()),
        }
    }

    #[test]
    fn dedupe_keeps_first_occurrence_in_order() {
        // Sets A, B, A, C, B, D -> survivors A, B, C, D; the surviving A/B
        // are the *first* occurrences (identified by their lo values).
        let mut rs = vec![
            dummy_range(1.0, &[0, 1]), // A
            dummy_range(2.0, &[2, 3]), // B
            dummy_range(3.0, &[0, 1]), // A dup
            dummy_range(4.0, &[4]),    // C
            dummy_range(5.0, &[2, 3]), // B dup
            dummy_range(6.0, &[5, 6]), // D
        ];
        dedupe_by_genes(&mut rs, 0);
        let los: Vec<f64> = rs.iter().map(|r| r.lo).collect();
        assert_eq!(los, vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn dedupe_tail_only_never_touches_head() {
        // Head entries (before `start`) are kept even when the tail repeats
        // their gene-sets; dedup applies within the tail alone.
        let mut rs = vec![
            dummy_range(1.0, &[0, 1]), // head A
            dummy_range(2.0, &[0, 1]), // tail A (first in tail -> kept)
            dummy_range(3.0, &[0, 1]), // tail A dup -> removed
            dummy_range(4.0, &[2]),    // tail C -> kept
        ];
        dedupe_by_genes(&mut rs, 1);
        let los: Vec<f64> = rs.iter().map(|r| r.lo).collect();
        assert_eq!(los, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn find_ranges_into_reuses_scratch_and_appends() {
        // Same results as find_ranges when the scratch and output vec are
        // reused across calls with different inputs.
        let data1 = paper_fig1();
        let data2 = vec![(2.0, 10), (2.0, 11), (2.5, 12), (2.5, 13)];
        let mut scratch = RangeScratch::default();
        let mut out = Vec::new();
        find_ranges_into(
            &data1,
            SignGroup::Positive,
            0.1,
            3,
            64,
            RangeExtension::On,
            &mut scratch,
            &mut out,
        );
        let after_first = out.len();
        assert_eq!(
            out,
            find_ranges(&data1, SignGroup::Positive, 0.1, 3, 64, RangeExtension::On)
        );
        find_ranges_into(
            &data2,
            SignGroup::Positive,
            0.0,
            2,
            64,
            RangeExtension::On,
            &mut scratch,
            &mut out,
        );
        assert_eq!(
            out[after_first..],
            find_ranges(&data2, SignGroup::Positive, 0.0, 2, 64, RangeExtension::On)
        );
    }

    #[test]
    fn nonfinite_and_nonpositive_ratios_ignored() {
        let data = vec![
            (f64::NAN, 0),
            (f64::INFINITY, 1),
            (-1.0, 2),
            (0.0, 3),
            (2.0, 4),
            (2.0, 5),
        ];
        let rs = ranges(&data, 0.01, 2, RangeExtension::On);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].genes.to_vec(), vec![4, 5]);
    }

    #[test]
    fn sign_group_classification() {
        assert_eq!(SignGroup::classify(1.0, 2.0), Some(SignGroup::Positive));
        assert_eq!(SignGroup::classify(-1.0, -2.0), Some(SignGroup::Positive));
        assert_eq!(SignGroup::classify(1.0, -2.0), Some(SignGroup::PosNeg));
        assert_eq!(SignGroup::classify(-1.0, 2.0), Some(SignGroup::NegPos));
        assert_eq!(SignGroup::classify(0.0, 2.0), None);
        assert_eq!(SignGroup::classify(1.0, f64::NAN), None);
        assert_eq!(SignGroup::Positive.ratio_sign(), 1);
        assert_eq!(SignGroup::PosNeg.ratio_sign(), -1);
    }
}
