//! Shifting-cluster mining via the exponential transform (paper Lemma 2).
//!
//! A *shifting* cluster has `c_ib = β_i + c_ia` with `|β_i − β_j| ≤ ε` —
//! rows differ by an approximately constant additive offset. Lemma 2: if
//! `e^C` is a scaling cluster then `C` is a shifting cluster, with
//! `β = ln(α)`. So mining scaling clusters on `exp(D)` finds exactly the
//! shifting clusters of `D`.
//!
//! Caveat carried over from the lemma: the ε tolerance applies to the
//! *exponentiated* ratios, i.e. offsets are compared as `|e^{β_i - β_j}| - 1
//! ≤ ε`, which for small ε is `|β_i − β_j| ≲ ε`.

use crate::cluster::Tricluster;
use crate::error::MineError;
use crate::miner::{mine, MiningResult};
use crate::params::Params;
use tricluster_matrix::{preprocess, Matrix3};

/// A shifting cluster: the tricluster region plus its additive offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftingCluster {
    /// The region (indices refer to the *original* matrix).
    pub cluster: Tricluster,
    /// Per-sample additive offset `β` of each sample relative to the
    /// cluster's first sample, estimated from the data
    /// (`β_j = mean over (g,t) of d[g][s_j][t] − d[g][s_0][t]`).
    pub sample_offsets: Vec<f64>,
}

/// Mines shifting triclusters of `m` by mining scaling clusters of
/// `exp(m)` (Lemma 2). Returns the clusters with their estimated offsets,
/// plus the inner [`MiningResult`] for diagnostics.
///
/// Values should be of moderate magnitude (`|v| ≲ 700`) or `exp` will
/// overflow; microarray log-expression data satisfies this by construction.
/// Values large enough to overflow `exp` surface as
/// [`MineError::NonFiniteInput`] on the transformed matrix.
pub fn mine_shifting(
    m: &Matrix3,
    params: &Params,
) -> Result<(Vec<ShiftingCluster>, MiningResult), MineError> {
    let exped = preprocess::exp_transform(m);
    let result = mine(&exped, params)?;
    let clusters = result
        .triclusters
        .iter()
        .map(|c| ShiftingCluster {
            cluster: c.clone(),
            sample_offsets: estimate_offsets(m, c),
        })
        .collect();
    Ok((clusters, result))
}

/// Mean additive offset of each cluster sample relative to the first.
fn estimate_offsets(m: &Matrix3, c: &Tricluster) -> Vec<f64> {
    let Some(&s0) = c.samples.first() else {
        return Vec::new();
    };
    c.samples
        .iter()
        .map(|&s| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for g in c.genes.iter() {
                for &t in &c.times {
                    sum += m.get(g, s, t) - m.get(g, s0, t);
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifting_fixture() -> Matrix3 {
        // 4 genes x 4 samples x 2 times. Genes 0..=2 form a shifting
        // cluster over samples 0..=2: row g at time t = base(g,t) + offset(s)
        // with offsets (0, 1.5, -0.5). Gene 3 and sample 3 are noise.
        let mut m = Matrix3::zeros(4, 4, 2);
        let offsets = [0.0, 1.5, -0.5];
        for t in 0..2 {
            for g in 0..3 {
                let base = 2.0 + g as f64 * 0.7 + t as f64 * 0.3;
                for (s, off) in offsets.iter().enumerate() {
                    m.set(g, s, t, base + off);
                }
                m.set(g, 3, t, 40.0 + (g * 7 + t * 3) as f64 * 1.31);
            }
            for s in 0..4 {
                m.set(3, s, t, -(10.0 + (s * 5 + t) as f64 * 2.17));
            }
        }
        m
    }

    fn params() -> Params {
        Params::builder()
            .epsilon(0.001)
            .min_genes(3)
            .min_samples(3)
            .min_times(2)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_embedded_shifting_cluster() {
        let m = shifting_fixture();
        let (clusters, _) = mine_shifting(&m, &params()).unwrap();
        assert_eq!(clusters.len(), 1, "{clusters:?}");
        let c = &clusters[0].cluster;
        assert_eq!(c.genes.to_vec(), vec![0, 1, 2]);
        assert_eq!(c.samples, vec![0, 1, 2]);
        assert_eq!(c.times, vec![0, 1]);
    }

    #[test]
    fn offsets_recovered() {
        let m = shifting_fixture();
        let (clusters, _) = mine_shifting(&m, &params()).unwrap();
        let offs = &clusters[0].sample_offsets;
        assert_eq!(offs.len(), 3);
        assert!((offs[0] - 0.0).abs() < 1e-9);
        assert!((offs[1] - 1.5).abs() < 1e-9);
        assert!((offs[2] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn scaling_data_is_not_shifting() {
        // multiplicative rows are NOT additive-coherent unless constant
        let mut m = Matrix3::zeros(3, 3, 2);
        for t in 0..2 {
            for g in 0..3 {
                for s in 0..3 {
                    m.set(g, s, t, (g + 1) as f64 * [1.0, 2.0, 4.0][s] + t as f64);
                }
            }
        }
        let (clusters, _) = mine_shifting(&m, &params()).unwrap();
        assert!(
            clusters.is_empty(),
            "pure scaling rows must not appear as shifting clusters: {clusters:?}"
        );
    }

    #[test]
    fn empty_matrix_yields_nothing() {
        let m = Matrix3::zeros(3, 3, 2); // all zeros -> exp = 1 everywhere
        let (clusters, _) = mine_shifting(&m, &params()).unwrap();
        // a constant matrix is one big shifting cluster with offsets 0
        assert_eq!(clusters.len(), 1);
        assert!(clusters[0].sample_offsets.iter().all(|o| o.abs() < 1e-12));
    }
}
