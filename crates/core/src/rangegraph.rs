//! Range multigraph construction (paper §4.1, Figure 2).
//!
//! For a time slice (a `genes × samples` matrix), the range multigraph has
//! one vertex per sample column and, for every column pair `(s_a, s_b)` with
//! `a < b`, one edge per [valid ratio range](crate::range) of the per-gene
//! ratios `d_xa / d_xb`. Each edge carries its [`RatioRange`] — the interval
//! bounds (the paper draws the weight `w = r_u / r_l`) and the gene-set.
//!
//! The multigraph is a *compact summary of all coherent behavior* in the
//! slice: any bicluster must appear as a clique of columns whose mutual
//! edges share at least `mx` genes, which is exactly what the
//! [`bicluster`](crate::bicluster) DFS searches for.

use crate::fault::{fail_point_panic, isolate, RunCtrl};
use crate::params::Params;
use crate::range::{find_ranges_into, RangeKind, RangeScratch, RatioRange, SignGroup};
use std::sync::atomic::{AtomicUsize, Ordering};
use tricluster_graph::MultiGraph;
use tricluster_matrix::Matrix3;
use tricluster_obs::{emit, names, timeline, Event, EventSink, Histogram, NullSink};

/// The range multigraph of one time slice.
#[derive(Debug, Clone)]
pub struct RangeGraph {
    /// Time slice index this graph was built from.
    pub time: usize,
    /// Vertices are sample columns; each edge `(a, b)` with `a < b` carries
    /// one ratio range.
    pub graph: MultiGraph<RatioRange>,
}

impl RangeGraph {
    /// Number of sample columns.
    pub fn n_samples(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Total number of ranges (edges).
    pub fn n_ranges(&self) -> usize {
        self.graph.edge_count()
    }

    /// The ranges between columns `a` and `b` (`a < b` expected; queries in
    /// the other orientation return the empty slice).
    pub fn ranges_between(&self, a: usize, b: usize) -> &[RatioRange] {
        self.graph.edges_between(a, b)
    }
}

/// Value distributions of one range-graph build, collected only when the
/// sink asks for histograms ([`EventSink::wants_histograms`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeGraphHists {
    /// Range width `(hi − lo) / lo` in parts per million, per edge.
    pub range_width_ppm: Histogram,
    /// Gene-set size per retained edge.
    pub edge_geneset_size: Histogram,
}

/// Per-slice statistics of one [`build_range_graph_observed`] call.
///
/// Purely input-determined (no timing), so values are identical run to run
/// and independent of how slices are scheduled across threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeGraphStats {
    /// Column pairs examined (`n_samples · (n_samples − 1) / 2`).
    pub pairs: u64,
    /// Gene ratios classified into a sign group.
    pub ratios: u64,
    /// Edges added to the multigraph (all kinds).
    pub edges: u64,
    /// Edges whose range kind is [`RangeKind::Valid`].
    pub ranges_valid: u64,
    /// Edges whose range kind is [`RangeKind::Extended`].
    pub ranges_extended: u64,
    /// Edges whose range kind is [`RangeKind::Split`].
    pub ranges_split: u64,
    /// Edges whose range kind is [`RangeKind::Patched`].
    pub ranges_patched: u64,
    /// Value distributions; `None` unless the sink wants histograms, so
    /// the default path never pays for bucket arithmetic.
    pub hists: Option<Box<RangeGraphHists>>,
}

impl RangeGraphStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &RangeGraphStats) {
        self.pairs += other.pairs;
        self.ratios += other.ratios;
        self.edges += other.edges;
        self.ranges_valid += other.ranges_valid;
        self.ranges_extended += other.ranges_extended;
        self.ranges_split += other.ranges_split;
        self.ranges_patched += other.ranges_patched;
        if let Some(o) = &other.hists {
            let h = self.hists.get_or_insert_with(Box::default);
            h.range_width_ppm.merge(&o.range_width_ppm);
            h.edge_geneset_size.merge(&o.edge_geneset_size);
        }
    }

    /// Mirrors the stats into counter increments (and histograms, when
    /// collected) on `sink`.
    pub fn publish(&self, sink: &dyn EventSink) {
        sink.counter(names::RG_PAIRS, self.pairs);
        sink.counter(names::RG_RATIOS, self.ratios);
        sink.counter(names::RG_EDGES, self.edges);
        sink.counter(names::RG_RANGES_VALID, self.ranges_valid);
        sink.counter(names::RG_RANGES_EXTENDED, self.ranges_extended);
        sink.counter(names::RG_RANGES_SPLIT, self.ranges_split);
        sink.counter(names::RG_RANGES_PATCHED, self.ranges_patched);
        if let Some(h) = &self.hists {
            sink.histogram(names::H_RG_RANGE_WIDTH_PPM, &h.range_width_ppm);
            sink.histogram(names::H_RG_EDGE_GENESET, &h.edge_geneset_size);
        }
    }
}

/// Builds the range multigraph for time slice `t` of `m`.
///
/// For each ordered column pair `(a, b)` with `a < b`, the per-gene ratios
/// `d_ga / d_gb` are partitioned into [sign groups](SignGroup), and each
/// group's maximal valid ranges (plus extended/split/patched ranges,
/// depending on [`Params::range_extension`]) become parallel edges.
pub fn build_range_graph(m: &Matrix3, t: usize, params: &Params) -> RangeGraph {
    build_range_graph_observed(m, t, params, &NullSink).0
}

/// Like [`build_range_graph`], but also returns per-slice statistics and
/// routes trace events ("rangegraph.pair", one per edge-carrying column
/// pair) through `sink`.
pub fn build_range_graph_observed(
    m: &Matrix3,
    t: usize,
    params: &Params,
    sink: &dyn EventSink,
) -> (RangeGraph, RangeGraphStats) {
    build_range_graph_workers(m, t, params, sink, 1)
}

/// Column-major copy of one time slice: [`SliceColumns::col`]`(c)[g]` is
/// the value of gene `g` in sample column `c`.
///
/// Built once per slice and shared read-only across all pair workers, so
/// the per-pair ratio loop in [`compute_pair`] walks two contiguous arrays
/// instead of striding the row-major `Matrix3` by `n_samples` for every
/// gene — at 225 pairs per 10-sample slice, each column is re-read ~9
/// times, and the transpose cost is amortized away.
#[derive(Debug, Clone)]
pub struct SliceColumns {
    n_genes: usize,
    cols: Vec<f64>,
}

impl SliceColumns {
    /// Transposes a row-major slice (`slice[gene * n_samples + sample]`).
    pub fn from_slice(slice: &[f64], n_genes: usize, n_samples: usize) -> Self {
        assert_eq!(slice.len(), n_genes * n_samples, "slice shape mismatch");
        let mut cols = vec![0.0f64; n_genes * n_samples];
        for c in 0..n_samples {
            let col = &mut cols[c * n_genes..(c + 1) * n_genes];
            for (g, v) in col.iter_mut().enumerate() {
                *v = slice[g * n_samples + c];
            }
        }
        SliceColumns { n_genes, cols }
    }

    /// The values of sample column `c`, indexed by gene.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.cols[c * self.n_genes..(c + 1) * self.n_genes]
    }

    /// Gene universe size (length of every column).
    #[inline]
    pub fn n_genes(&self) -> usize {
        self.n_genes
    }
}

/// Per-worker scratch for [`compute_pair`]: the three sign-group ratio
/// buffers plus the range finder's sort/window/dedupe buffers and gene-set
/// pool. One instance per worker thread; nothing in here escapes a pair
/// computation.
#[derive(Debug, Default)]
pub struct PairScratch {
    groups: [Vec<(f64, usize)>; 3],
    /// All-gene quotient buffer for the branch-free division pass.
    quot: Vec<f64>,
    ranges: RangeScratch,
}

/// Computes the ratio ranges of column pair `(a, b)` (with `a < b`) of one
/// time slice, appending them to `out` grouped by sign. Returns the number
/// of gene ratios classified into a sign group.
///
/// Pure function of the slice data and `params` — safe to run on any worker
/// in any order; all bookkeeping happens later in `absorb_pair`. Public so
/// the `bench kernel` microbenchmark can drive the exact production pair
/// kernel without the graph-assembly and observability layers around it.
pub fn compute_pair(
    cols: &SliceColumns,
    a: usize,
    b: usize,
    params: &Params,
    scratch: &mut PairScratch,
    out: &mut Vec<RatioRange>,
) -> u64 {
    fail_point_panic("core.rangegraph.pair");
    let mut ratios = 0u64;
    for g in &mut scratch.groups {
        g.clear();
    }
    let ca = cols.col(a);
    let cb = cols.col(b);
    // Divide first in a branch-free pass the compiler can vectorize (the
    // divider is the bottleneck of the classify loop), then route. The
    // ratio is the identical `(va / vb).abs()` expression; genes the router
    // rejects just leave an unread junk quotient behind.
    //
    // The router gates on the quotient alone: `ratio` finite and positive
    // already implies both operands are finite and non-zero (a zero, NaN,
    // or infinite operand always yields a zero, NaN, or infinite quotient),
    // which is exactly [`SignGroup::classify`]'s `Some` condition — so the
    // sign group reduces to the two IEEE sign bits and the push set, order,
    // and `ratios` count are identical to classifying first.
    let quot = &mut scratch.quot;
    quot.clear();
    quot.extend(ca.iter().zip(cb).map(|(&va, &vb)| (va / vb).abs()));
    for (gene, (&va, &vb)) in ca.iter().zip(cb).enumerate() {
        let ratio = quot[gene];
        if ratio.is_finite() && ratio > 0.0 {
            let sa = (va.to_bits() >> 63) as usize;
            let sb = (vb.to_bits() >> 63) as usize;
            // (+,+)/(-,-) -> Positive (0); (+,-) -> PosNeg (1); (-,+) -> NegPos (2)
            let gi = (sa ^ sb) * (1 + sa);
            scratch.groups[gi].push((ratio, gene));
            ratios += 1;
        }
    }
    for (gi, sign) in [
        (0, SignGroup::Positive),
        (1, SignGroup::PosNeg),
        (2, SignGroup::NegPos),
    ] {
        if scratch.groups[gi].len() < params.min_genes {
            continue;
        }
        find_ranges_into(
            &scratch.groups[gi],
            sign,
            params.epsilon,
            params.min_genes,
            cols.n_genes,
            params.range_extension,
            &mut scratch.ranges,
            out,
        );
    }
    ratios
}

/// Folds one computed pair into the graph and stats, draining `ranges`.
///
/// This is the single-threaded merge step: pairs are absorbed in canonical
/// `(a, b)` order regardless of which worker computed them, so the produced
/// `MultiGraph` (edge insertion order included), the stats, the histograms,
/// and the "rangegraph.pair" event sequence are byte-identical to a fully
/// sequential build.
#[allow(clippy::too_many_arguments)]
fn absorb_pair(
    t: usize,
    a: usize,
    b: usize,
    ratios: u64,
    ranges: &mut Vec<RatioRange>,
    graph: &mut MultiGraph<RatioRange>,
    stats: &mut RangeGraphStats,
    sink: &dyn EventSink,
) {
    stats.pairs += 1;
    stats.ratios += ratios;
    for range in ranges.iter() {
        match range.kind {
            RangeKind::Valid => stats.ranges_valid += 1,
            RangeKind::Extended => stats.ranges_extended += 1,
            RangeKind::Split => stats.ranges_split += 1,
            RangeKind::Patched => stats.ranges_patched += 1,
        }
        if let Some(h) = stats.hists.as_deref_mut() {
            let width_ppm = if range.lo > 0.0 {
                (((range.hi - range.lo) / range.lo) * 1e6).round() as u64
            } else {
                0
            };
            h.range_width_ppm.record(width_ppm);
            h.edge_geneset_size.record(range.genes.count() as u64);
        }
    }
    // One adjacency search for the whole pair instead of one per edge;
    // drain order is preserved, so the edge lists (and everything derived
    // from their order) stay byte-identical to per-edge insertion.
    let pair_edges = graph.add_edges_between(a, b, ranges.drain(..)) as u64;
    stats.edges += pair_edges;
    if pair_edges > 0 {
        emit(sink, || {
            Event::new("rangegraph.pair")
                .field("time", t)
                .field("a", a)
                .field("b", b)
                .field("edges", pair_edges)
        });
    }
}

/// Like [`build_range_graph_observed`], but distributes the column-pair
/// sweep over up to `workers` threads.
///
/// Work items are single `(a, b)` pairs claimed from an atomic cursor; each
/// worker owns a [`PairScratch`] so the hot path does no per-pair
/// allocation. Computed ranges are merged on the calling thread in canonical
/// pair order (see [`absorb_pair`]), so the output is byte-identical for
/// every `workers` value.
pub fn build_range_graph_workers(
    m: &Matrix3,
    t: usize,
    params: &Params,
    sink: &dyn EventSink,
    workers: usize,
) -> (RangeGraph, RangeGraphStats) {
    build_range_graph_ctrl(m, t, params, sink, workers, &RunCtrl::unbounded())
}

/// Like [`build_range_graph_workers`], under the run control of `ctrl`: the
/// deadline is polled before each pair, and — when `ctrl` collects faults —
/// a panic while computing one pair downgrades to a
/// [`WorkerFailure`](crate::WorkerFailure) that costs only that pair's
/// edges. Skipped and failed pairs contribute nothing, which can only
/// remove edges: every bicluster mined from the partial graph is still a
/// bicluster of the complete one.
pub fn build_range_graph_ctrl(
    m: &Matrix3,
    t: usize,
    params: &Params,
    sink: &dyn EventSink,
    workers: usize,
    ctrl: &RunCtrl,
) -> (RangeGraph, RangeGraphStats) {
    let n_genes = m.n_genes();
    let n_samples = m.n_samples();
    // One column-major copy, shared read-only by every pair worker.
    let cols = SliceColumns::from_slice(m.time_slice_raw(t), n_genes, n_samples);
    let mut graph: MultiGraph<RatioRange> = MultiGraph::new(n_samples);
    let mut stats = RangeGraphStats::default();
    if sink.wants_histograms() {
        stats.hists = Some(Box::default());
    }

    let pairs: Vec<(usize, usize)> = (0..n_samples)
        .flat_map(|a| ((a + 1)..n_samples).map(move |b| (a, b)))
        .collect();
    if let Some(p) = &ctrl.progress {
        p.add_pairs_total(pairs.len() as u64);
    }

    if workers <= 1 || pairs.len() <= 1 {
        let mut scratch = PairScratch::default();
        let mut ranges: Vec<RatioRange> = Vec::new();
        for &(a, b) in &pairs {
            if ctrl.token.deadline_exceeded() {
                break;
            }
            let tl_pair = timeline::span(names::T_RG_PAIR);
            let computed = isolate(
                &ctrl.faults,
                "range_graph_pair",
                || format!("t={t} pair=({a},{b})"),
                || compute_pair(&cols, a, b, params, &mut scratch, &mut ranges),
            );
            drop(tl_pair);
            if let Some(p) = &ctrl.progress {
                p.pair_done();
            }
            match computed {
                Some(ratios) => {
                    absorb_pair(t, a, b, ratios, &mut ranges, &mut graph, &mut stats, sink)
                }
                None => {
                    // The panicked pair may have left partial state behind;
                    // start the next pair from fresh buffers.
                    scratch = PairScratch::default();
                    ranges = Vec::new();
                }
            }
        }
        return (RangeGraph { time: t, graph }, stats);
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(Vec<RatioRange>, u64)>> = (0..pairs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(pairs.len()))
            .map(|_| {
                scope.spawn(|| {
                    let _tl = sink.timeline().map(|t| t.attach("pair"));
                    let mut scratch = PairScratch::default();
                    let mut done: Vec<(usize, Vec<RatioRange>, u64)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pairs.len() {
                            break;
                        }
                        if ctrl.token.deadline_exceeded() {
                            break;
                        }
                        let (a, b) = pairs[i];
                        let tl_pair = timeline::span(names::T_RG_PAIR);
                        let mut out = Vec::new();
                        let computed = isolate(
                            &ctrl.faults,
                            "range_graph_pair",
                            || format!("t={t} pair=({a},{b})"),
                            || compute_pair(&cols, a, b, params, &mut scratch, &mut out),
                        );
                        drop(tl_pair);
                        if let Some(p) = &ctrl.progress {
                            p.pair_done();
                        }
                        match computed {
                            Some(ratios) => done.push((i, out, ratios)),
                            None => scratch = PairScratch::default(),
                        }
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, out, ratios) in h.join().expect("range-graph worker panicked") {
                slots[i] = Some((out, ratios));
            }
        }
    });
    for (i, slot) in slots.iter_mut().enumerate() {
        let (a, b) = pairs[i];
        // Skipped (post-deadline) and failed pairs left their slot empty.
        let Some((mut ranges, ratios)) = slot.take() else {
            continue;
        };
        absorb_pair(t, a, b, ratios, &mut ranges, &mut graph, &mut stats, sink);
    }
    (RangeGraph { time: t, graph }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_table1;

    fn default_params(eps: f64, mx: usize) -> Params {
        Params::builder()
            .epsilon(eps)
            .min_genes(mx)
            .min_samples(3)
            .min_times(2)
            .build()
            .unwrap()
    }

    /// Paper Figure 1/2: at time t0, the pair (s0, s6) has exactly one valid
    /// range [3.0, 3.0] with gene-set {g1, g4, g8}.
    #[test]
    fn paper_fig2_s0_s6_range() {
        let m = paper_table1();
        let rg = build_range_graph(&m, 0, &default_params(0.01, 3));
        let ranges = rg.ranges_between(0, 6);
        assert_eq!(ranges.len(), 1, "{ranges:?}");
        assert_eq!(ranges[0].genes.to_vec(), vec![1, 4, 8]);
        assert!((ranges[0].lo - 3.0).abs() < 1e-9);
        assert!((ranges[0].hi - 3.0).abs() < 1e-9);
    }

    /// Paper Figure 2 shows (s0, s1) carrying the single range of weight 6/5
    /// with gene-set {g1, g3, g4, g8}.
    #[test]
    fn paper_fig2_s0_s1_range() {
        let m = paper_table1();
        let rg = build_range_graph(&m, 0, &default_params(0.01, 3));
        let ranges = rg.ranges_between(0, 6);
        assert!(!ranges.is_empty());
        let r01 = rg.ranges_between(0, 1);
        assert_eq!(r01.len(), 1, "{r01:?}");
        assert_eq!(r01[0].genes.to_vec(), vec![1, 3, 4, 8]);
        assert!((r01[0].weight() - 1.0).abs() < 1e-9, "uniform ratio range");
    }

    /// Paper Figure 2: (s1, s4) carries two parallel edges — weight 5/4 with
    /// {g1, g4, g8} and weight 1/1 with {g0, g2, g6, g7, g9}.
    #[test]
    fn paper_fig2_s1_s4_parallel_edges() {
        let m = paper_table1();
        let rg = build_range_graph(&m, 0, &default_params(0.01, 3));
        let ranges = rg.ranges_between(1, 4);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
        let mut genesets: Vec<Vec<usize>> = ranges.iter().map(|r| r.genes.to_vec()).collect();
        genesets.sort();
        assert_eq!(genesets[0], vec![0, 2, 6, 7, 9]);
        assert_eq!(genesets[1], vec![1, 4, 8]);
    }

    #[test]
    fn observed_stats_match_graph() {
        let m = paper_table1();
        let p = default_params(0.01, 3);
        let (rg, stats) = build_range_graph_observed(&m, 0, &p, &NullSink);
        assert_eq!(stats.edges as usize, rg.n_ranges());
        assert_eq!(stats.pairs, 7 * 6 / 2);
        assert!(stats.ratios > 0);
        assert_eq!(
            stats.edges,
            stats.ranges_valid + stats.ranges_extended + stats.ranges_split + stats.ranges_patched
        );
        // stats are input-determined: a second run is identical
        let (_, again) = build_range_graph_observed(&m, 0, &p, &NullSink);
        assert_eq!(stats, again);
    }

    #[test]
    fn observed_emits_pair_events() {
        let m = paper_table1();
        let p = default_params(0.01, 3);
        let rec = tricluster_obs::Recorder::new();
        let (rg, stats) = build_range_graph_observed(&m, 0, &p, &rec);
        let events = rec.take_events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.name == "rangegraph.pair"));
        let total_edges: u64 = events
            .iter()
            .map(|e| match e.fields.iter().find(|(k, _)| *k == "edges") {
                Some((_, tricluster_obs::Value::U64(n))) => *n,
                other => panic!("missing edges field: {other:?}"),
            })
            .sum();
        assert_eq!(total_edges as usize, rg.n_ranges());
        assert_eq!(total_edges, stats.edges);
    }

    #[test]
    fn histograms_collected_only_when_wanted() {
        let m = paper_table1();
        let p = default_params(0.01, 3);
        // NullSink: no histogram allocation at all
        let (_, quiet) = build_range_graph_observed(&m, 0, &p, &NullSink);
        assert!(quiet.hists.is_none());
        // Recorder wants histograms: one sample per edge
        let rec = tricluster_obs::Recorder::new();
        let (rg, stats) = build_range_graph_observed(&m, 0, &p, &rec);
        let h = stats.hists.as_ref().expect("collected");
        assert_eq!(h.edge_geneset_size.count() as usize, rg.n_ranges());
        assert_eq!(h.range_width_ppm.count() as usize, rg.n_ranges());
        assert!(h.edge_geneset_size.min() >= p.min_genes as u64);
        // published through the sink by publish()
        stats.publish(&rec);
        let report = rec.snapshot();
        assert_eq!(
            report
                .histogram(names::H_RG_EDGE_GENESET)
                .expect("published")
                .count() as usize,
            rg.n_ranges()
        );
        // deterministic: a second collection is identical
        let rec2 = tricluster_obs::Recorder::new();
        let (_, again) = build_range_graph_observed(&m, 0, &p, &rec2);
        assert_eq!(stats, again);
    }

    #[test]
    fn worker_counts_build_identical_graphs() {
        let m = paper_table1();
        let p = default_params(0.1, 3);
        let rec1 = tricluster_obs::Recorder::new();
        let (rg1, st1) = build_range_graph_workers(&m, 0, &p, &rec1, 1);
        let ev1: Vec<String> = rec1
            .take_events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        for workers in [2usize, 4, 8] {
            let rec = tricluster_obs::Recorder::new();
            let (rg, st) = build_range_graph_workers(&m, 0, &p, &rec, workers);
            assert_eq!(st, st1, "stats differ at workers={workers}");
            assert_eq!(rg.n_ranges(), rg1.n_ranges());
            for a in 0..rg1.n_samples() {
                for b in (a + 1)..rg1.n_samples() {
                    assert_eq!(
                        rg.ranges_between(a, b),
                        rg1.ranges_between(a, b),
                        "edge list differs at ({a},{b}) with workers={workers}"
                    );
                }
            }
            // Same trace event sequence, in the same canonical order.
            let ev: Vec<String> = rec.take_events().iter().map(|e| format!("{e:?}")).collect();
            assert_eq!(ev, ev1, "pair events differ at workers={workers}");
        }
    }

    #[test]
    fn graph_has_no_edges_for_sparse_pairs() {
        let m = paper_table1();
        let rg = build_range_graph(&m, 0, &default_params(0.01, 3));
        // (s0, s3): s0 has values only for g1,g3,g4,g8; s3 only for g3,g4,g8
        // (two shared with s0's non-blank set after random fill the blanks
        // are random, here zero-filled cells are skipped by sign logic since
        // classify(0, x) = None). With mx=3 no coherent range of 3 genes is
        // guaranteed... just check the query API doesn't panic and returns
        // a slice.
        let _ = rg.ranges_between(0, 3);
        assert_eq!(rg.ranges_between(6, 0).len(), 0, "edges only stored a<b");
    }

    #[test]
    fn negative_values_grouped_separately() {
        use tricluster_matrix::Matrix3;
        // 4 genes, 2 samples, 1 time; two genes with ratio +2 and two genes
        // with ratio -2 ((+,-) pattern) — they must land on different edges.
        let mut m = Matrix3::zeros(4, 2, 1);
        m.set(0, 0, 0, 2.0);
        m.set(0, 1, 0, 1.0);
        m.set(1, 0, 0, 4.0);
        m.set(1, 1, 0, 2.0);
        m.set(2, 0, 0, 2.0);
        m.set(2, 1, 0, -1.0);
        m.set(3, 0, 0, 4.0);
        m.set(3, 1, 0, -2.0);
        let params = Params::builder()
            .epsilon(0.01)
            .min_genes(2)
            .min_samples(2)
            .min_times(1)
            .build()
            .unwrap();
        let rg = build_range_graph(&m, 0, &params);
        let ranges = rg.ranges_between(0, 1);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
        let pos: Vec<_> = ranges
            .iter()
            .filter(|r| r.sign == SignGroup::Positive)
            .collect();
        let neg: Vec<_> = ranges
            .iter()
            .filter(|r| r.sign == SignGroup::PosNeg)
            .collect();
        assert_eq!(pos.len(), 1);
        assert_eq!(neg.len(), 1);
        assert_eq!(pos[0].genes.to_vec(), vec![0, 1]);
        assert_eq!(neg[0].genes.to_vec(), vec![2, 3]);
    }

    #[test]
    fn mixed_pos_pos_and_neg_neg_share_positive_edge() {
        use tricluster_matrix::Matrix3;
        // (+,+) and (−,−) both give positive ratios; the paper places no
        // sign constraint on positive ratios, so they share a range.
        let mut m = Matrix3::zeros(2, 2, 1);
        m.set(0, 0, 0, 2.0);
        m.set(0, 1, 0, 1.0);
        m.set(1, 0, 0, -4.0);
        m.set(1, 1, 0, -2.0);
        let params = Params::builder()
            .epsilon(0.01)
            .min_genes(2)
            .min_samples(2)
            .min_times(1)
            .build()
            .unwrap();
        let rg = build_range_graph(&m, 0, &params);
        let ranges = rg.ranges_between(0, 1);
        assert_eq!(ranges.len(), 1, "{ranges:?}");
        assert_eq!(ranges[0].genes.to_vec(), vec![0, 1]);
    }
}
