//! Property-based tests on the core invariants: range finding, span
//! algebra, miner soundness/maximality/determinism, and merge/prune.

use proptest::prelude::*;
use tricluster_bitset::BitSet;
use tricluster_core::params::RangeExtension;
use tricluster_core::prune::merge_and_prune;
use tricluster_core::range::{find_ranges, RangeKind, SignGroup};
use tricluster_core::validate::is_valid_cluster;
use tricluster_core::{mine, span, MergeParams, Params, Tricluster};
use tricluster_matrix::Matrix3;

// ---------- range finding ----------

fn ratio_inputs() -> impl Strategy<Value = Vec<(f64, usize)>> {
    proptest::collection::vec(0.1f64..100.0, 0..60).prop_map(|ratios| {
        ratios
            .into_iter()
            .enumerate()
            .map(|(g, r)| (r, g))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_contain_only_and_all_in_interval_genes(
        ratios in ratio_inputs(),
        eps in 0.0f64..0.3,
        mx in 1usize..5,
    ) {
        let n = ratios.len().max(1);
        for ext in [RangeExtension::On, RangeExtension::Off] {
            let ranges = find_ranges(&ratios, SignGroup::Positive, eps, mx, n, ext);
            for r in &ranges {
                prop_assert!(r.lo <= r.hi);
                prop_assert!(r.genes.count() >= mx, "range below mx: {r:?}");
                // a gene is in the range iff its ratio lies in [lo, hi]
                for &(ratio, g) in &ratios {
                    let inside = ratio >= r.lo && ratio <= r.hi;
                    prop_assert_eq!(
                        r.genes.contains(g),
                        inside,
                        "gene {} ratio {} vs [{}, {}]",
                        g, ratio, r.lo, r.hi
                    );
                }
            }
        }
    }

    #[test]
    fn valid_windows_respect_epsilon(
        ratios in ratio_inputs(),
        eps in 0.0f64..0.3,
        mx in 1usize..5,
    ) {
        let n = ratios.len().max(1);
        let ranges = find_ranges(&ratios, SignGroup::Positive, eps, mx, n, RangeExtension::On);
        for r in &ranges {
            match r.kind {
                RangeKind::Valid => {
                    prop_assert!(r.hi / r.lo - 1.0 <= eps + 1e-9, "{r:?}");
                }
                RangeKind::Extended | RangeKind::Split => {
                    prop_assert!(
                        r.hi / r.lo - 1.0 <= 2.0 * eps + 2e-9,
                        "wider than 2ε: {r:?}"
                    );
                }
                RangeKind::Patched => {
                    // patched blocks span [v/(1+ε), v·(1+ε)] around a split
                    // boundary: width (1+ε)² − 1 = 2ε + ε²
                    let bound = (1.0 + eps) * (1.0 + eps) - 1.0;
                    prop_assert!(
                        r.hi / r.lo - 1.0 <= bound + 2e-9,
                        "wider than (1+ε)²−1: {r:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn extension_on_covers_every_off_range(
        ratios in ratio_inputs(),
        eps in 0.001f64..0.3,
        mx in 1usize..5,
    ) {
        // every maximal valid window must be fully inside some ON-range
        // union (no genes are lost by chaining/splitting)
        let n = ratios.len().max(1);
        let off = find_ranges(&ratios, SignGroup::Positive, eps, mx, n, RangeExtension::Off);
        let on = find_ranges(&ratios, SignGroup::Positive, eps, mx, n, RangeExtension::On);
        let mut covered = BitSet::new(n);
        for r in &on {
            covered.union_with(&r.genes);
        }
        for r in &off {
            prop_assert!(
                r.genes.is_subset(&covered),
                "genes of a valid window lost with extension on"
            );
        }
    }
}

// ---------- span algebra ----------

fn arb_cluster() -> impl Strategy<Value = Tricluster> {
    (
        proptest::collection::btree_set(0usize..12, 1..6),
        proptest::collection::btree_set(0usize..8, 1..5),
        proptest::collection::btree_set(0usize..6, 1..4),
    )
        .prop_map(|(g, s, t)| {
            Tricluster::new(
                BitSet::from_indices(12, g),
                s.into_iter().collect(),
                t.into_iter().collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn span_formulas_match_enumeration(a in arb_cluster(), b in arb_cluster()) {
        let inter = a.cells().filter(|&(g, s, t)| b.contains_cell(g, s, t)).count();
        prop_assert_eq!(span::intersection_size(&a, &b), inter);
        prop_assert_eq!(span::difference_size(&b, &a), b.span_size() - inter);
        let bound = a.bounding(&b);
        prop_assert_eq!(span::bounding_size(&a, &b), bound.span_size());
        let extra = bound
            .cells()
            .filter(|&(g, s, t)| !a.contains_cell(g, s, t) && !b.contains_cell(g, s, t))
            .count();
        prop_assert_eq!(span::bounding_extra_size(&a, &b), extra);
    }

    #[test]
    fn subcluster_iff_all_cells_contained(a in arb_cluster(), b in arb_cluster()) {
        let by_cells = a.cells().all(|(g, s, t)| b.contains_cell(g, s, t));
        prop_assert_eq!(a.is_subcluster_of(&b), by_cells);
    }

    #[test]
    fn merge_prune_survivors_are_maximal(
        clusters in proptest::collection::vec(arb_cluster(), 0..8),
        eta in 0.0f64..0.5,
        gamma in 0.0f64..0.3,
    ) {
        let (out, _) = merge_and_prune(clusters, &MergeParams { eta, gamma });
        for (i, a) in out.iter().enumerate() {
            for (j, b) in out.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subcluster_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn merge_prune_never_shrinks_coverage_below_any_survivor(
        clusters in proptest::collection::vec(arb_cluster(), 1..6),
        gamma in 0.0f64..0.3,
    ) {
        // with eta = 0 nothing is deleted, only merged: the union coverage
        // can only grow (bounding clusters are supersets)
        let before: std::collections::HashSet<(usize, usize, usize)> =
            clusters.iter().flat_map(|c| c.cells()).collect();
        let (out, _) = merge_and_prune(clusters, &MergeParams { eta: 0.0, gamma });
        let after: std::collections::HashSet<(usize, usize, usize)> =
            out.iter().flat_map(|c| c.cells()).collect();
        prop_assert!(after.is_superset(&before));
    }
}

// ---------- miner soundness / determinism ----------

fn arb_matrix() -> impl Strategy<Value = Matrix3> {
    proptest::collection::vec(0.2f64..50.0, 5 * 4 * 2).prop_map(|vals| {
        let mut m = Matrix3::zeros(5, 4, 2);
        m.as_mut_slice().copy_from_slice(&vals);
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mined_clusters_sound_and_maximal(m in arb_matrix(), eps in 0.01f64..0.4) {
        let params = Params::builder()
            .epsilon(eps)
            .min_size(2, 2, 2)
            .build()
            .unwrap();
        let result = mine(&m, &params).unwrap();
        // soundness at the widened tolerance (extension allows 2ε ranges)
        for c in &result.triclusters {
            prop_assert!(
                is_valid_cluster(&m, c, 2.0 * eps + 1e-9, 2.0 * eps + 1e-9, (2, 2, 2)),
                "invalid cluster: {c:?}"
            );
        }
        // mutual maximality
        for (i, a) in result.triclusters.iter().enumerate() {
            for (j, b) in result.triclusters.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subcluster_of(b));
                }
            }
        }
        // determinism
        let again = mine(&m, &params).unwrap();
        prop_assert_eq!(result.triclusters, again.triclusters);
    }

    #[test]
    fn permutation_soundness(m in arb_matrix(), eps in 0.05f64..0.3) {
        // Lemma 1 symmetry: clusters mined from the gene/time-permuted
        // matrix are valid clusters of the original once mapped back.
        // (Exact *count* equality is NOT guaranteed: the paper's own
        // time-extension pruning — intersecting with maximal per-slice
        // biclusters — is orientation-dependent, so different axis orders
        // can keep or drop different corner-case clusters.)
        use tricluster_matrix::Axis;
        let params = Params::builder()
            .epsilon(eps)
            .min_size(2, 2, 2)
            .build()
            .unwrap();
        let twisted = m.permuted([Axis::Time, Axis::Sample, Axis::Gene]);
        for c in &mine(&twisted, &params).unwrap().triclusters {
            // map back: twisted genes = original times, twisted times =
            // original genes
            let mapped = Tricluster::new(
                BitSet::from_indices(m.n_genes(), c.times.iter().copied()),
                c.samples.clone(),
                c.genes.to_vec(),
            );
            prop_assert!(
                is_valid_cluster(
                    &m,
                    &mapped,
                    2.0 * eps + 1e-9,
                    2.0 * eps + 1e-9,
                    (2, 2, 2)
                ),
                "permuted-mined cluster invalid in original coordinates: {mapped:?}"
            );
        }
    }
}
