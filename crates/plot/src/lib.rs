//! Dependency-free SVG line charts.
//!
//! The benchmark harness regenerates the paper's figures as data series;
//! this crate renders them to standalone SVG so Figure 7's sweeps and the
//! Figure 8–10 cluster curves exist as actual images, not just CSV.
//!
//! The API is a small builder:
//!
//! ```
//! use tricluster_plot::Chart;
//!
//! let svg = Chart::new("runtime vs genes", "genes per cluster", "seconds")
//!     .series("tricluster", &[(50.0, 3.7), (100.0, 6.5), (150.0, 8.8)])
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("polyline"));
//! ```
//!
//! [`SubplotGrid`] composes several charts into one figure (the paper's
//! Figure 7 is a 2×3 grid; Figures 8–10 are per-slice grids).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ticks;

pub use ticks::nice_ticks;

/// Categorical palette (colorblind-safe Okabe–Ito).
pub const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
];

/// One data series.
#[derive(Debug, Clone)]
struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

/// A single line chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    width: f64,
    height: f64,
    series: Vec<Series>,
    y_from_zero: bool,
    show_legend: bool,
}

impl Chart {
    /// Creates a chart with the given title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 420.0,
            height: 300.0,
            series: Vec::new(),
            y_from_zero: true,
            show_legend: true,
        }
    }

    /// Sets the canvas size in pixels (default 420 × 300).
    pub fn size(mut self, width: f64, height: f64) -> Self {
        assert!(width > 60.0 && height > 60.0, "canvas too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a named series. Points need not be sorted; they are drawn in
    /// the given order. Non-finite points are skipped.
    pub fn series(mut self, label: impl Into<String>, points: &[(f64, f64)]) -> Self {
        self.series.push(Series {
            label: label.into(),
            points: points
                .iter()
                .copied()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .collect(),
        });
        self
    }

    /// Whether the y axis starts at zero (default) or at the data minimum.
    pub fn y_from_zero(mut self, from_zero: bool) -> Self {
        self.y_from_zero = from_zero;
        self
    }

    /// Shows or hides the legend (default shown).
    pub fn legend(mut self, show: bool) -> Self {
        self.show_legend = show;
        self
    }

    fn data_bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(x);
                ys.push(y);
            }
        }
        if xs.is_empty() {
            return None;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            x0 = x0.min(x);
            x1 = x1.max(x);
        }
        for &y in &ys {
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if self.y_from_zero {
            y0 = y0.min(0.0);
        }
        // degenerate spans get a symmetric pad so the scale is well-defined
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if y0 == y1 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart to an SVG string (standalone document).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let w = self.width;
        let h = self.height;
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"11\">\n"
        ));
        out.push_str(&format!(
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
        ));
        self.render_into(&mut out, 0.0, 0.0);
        out.push_str("</svg>\n");
        out
    }

    /// Renders the chart contents translated by `(dx, dy)` into `out`
    /// (used by [`SubplotGrid`]).
    fn render_into(&self, out: &mut String, dx: f64, dy: f64) {
        let (ml, mr, mt, mb) = (52.0, 14.0, 28.0, 42.0);
        let pw = self.width - ml - mr; // plot area
        let ph = self.height - mt - mb;
        out.push_str(&format!("<g transform=\"translate({dx},{dy})\">\n"));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">{}</text>\n",
            self.width / 2.0,
            escape(&self.title)
        ));
        let Some((x0, x1, y0, y1)) = self.data_bounds() else {
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#888\">no data</text>\n",
                self.width / 2.0,
                self.height / 2.0
            ));
            out.push_str("</g>\n");
            return;
        };
        let sx = move |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let sy = move |y: f64| mt + ph - (y - y0) / (y1 - y0) * ph;

        // axes
        out.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n",
            mt + ph,
            ml + pw,
            mt + ph
        ));
        out.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"#333\"/>\n",
            mt + ph
        ));
        // ticks + grid
        for t in nice_ticks(x0, x1, 6) {
            let px = sx(t);
            out.push_str(&format!(
                "<line x1=\"{px}\" y1=\"{}\" x2=\"{px}\" y2=\"{}\" stroke=\"#333\"/>\n",
                mt + ph,
                mt + ph + 4.0
            ));
            out.push_str(&format!(
                "<text x=\"{px}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
                mt + ph + 16.0,
                fmt_tick(t)
            ));
        }
        for t in nice_ticks(y0, y1, 5) {
            let py = sy(t);
            out.push_str(&format!(
                "<line x1=\"{}\" y1=\"{py}\" x2=\"{}\" y2=\"{py}\" stroke=\"#ddd\"/>\n",
                ml,
                ml + pw
            ));
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
                ml - 6.0,
                py + 3.5,
                fmt_tick(t)
            ));
        }
        // axis labels
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            ml + pw / 2.0,
            self.height - 8.0,
            escape(&self.x_label)
        ));
        out.push_str(&format!(
            "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 14 {})\">{}</text>\n",
            mt + ph / 2.0,
            mt + ph / 2.0,
            escape(&self.y_label)
        ));
        // series
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            if s.points.is_empty() {
                continue;
            }
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                .collect();
            out.push_str(&format!(
                "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\" points=\"{}\"/>\n",
                pts.join(" ")
            ));
            for &(x, y) in &s.points {
                out.push_str(&format!(
                    "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"2.4\" fill=\"{color}\"/>\n",
                    sx(x),
                    sy(y)
                ));
            }
        }
        // legend
        if self.show_legend && self.series.len() > 1 {
            for (i, s) in self.series.iter().enumerate() {
                let color = PALETTE[i % PALETTE.len()];
                let ly = mt + 6.0 + i as f64 * 14.0;
                out.push_str(&format!(
                    "<line x1=\"{}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
                    ml + pw - 86.0,
                    ml + pw - 68.0
                ));
                out.push_str(&format!(
                    "<text x=\"{}\" y=\"{}\">{}</text>\n",
                    ml + pw - 64.0,
                    ly + 3.5,
                    escape(&s.label)
                ));
            }
        }
        out.push_str("</g>\n");
    }
}

/// A grid of charts rendered as one SVG document.
#[derive(Debug, Clone, Default)]
pub struct SubplotGrid {
    charts: Vec<Chart>,
    columns: usize,
}

impl SubplotGrid {
    /// Creates a grid with the given number of columns.
    pub fn new(columns: usize) -> Self {
        assert!(columns >= 1, "at least one column");
        SubplotGrid {
            charts: Vec::new(),
            columns,
        }
    }

    /// Appends a chart (fills row-major).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, chart: Chart) -> Self {
        self.charts.push(chart);
        self
    }

    /// Renders the grid to a standalone SVG document.
    pub fn render(&self) -> String {
        if self.charts.is_empty() {
            return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>\n"
                .to_string();
        }
        let cell_w = self.charts.iter().map(|c| c.width).fold(0.0f64, f64::max);
        let cell_h = self.charts.iter().map(|c| c.height).fold(0.0f64, f64::max);
        let rows = self.charts.len().div_ceil(self.columns);
        let w = cell_w * self.columns as f64;
        let h = cell_h * rows as f64;
        let mut out = String::with_capacity(8192 * self.charts.len());
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"11\">\n"
        ));
        out.push_str(&format!(
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
        ));
        for (i, chart) in self.charts.iter().enumerate() {
            let col = (i % self.columns) as f64;
            let row = (i / self.columns) as f64;
            chart.render_into(&mut out, col * cell_w, row * cell_h);
        }
        out.push_str("</svg>\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.01..1000.0).contains(&a) {
        format!("{v:.1e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic_chart() -> Chart {
        Chart::new("runtime", "genes", "seconds").series("a", &[(1.0, 2.0), (2.0, 3.0), (3.0, 2.5)])
    }

    #[test]
    fn render_is_valid_svg_shell() {
        let svg = basic_chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn contains_title_labels_and_series() {
        let svg = basic_chart().render();
        assert!(svg.contains(">runtime<"));
        assert!(svg.contains(">genes<"));
        assert!(svg.contains(">seconds<"));
        assert!(svg.contains("polyline"));
        assert_eq!(svg.matches("<circle").count(), 3, "one marker per point");
    }

    #[test]
    fn multiple_series_get_distinct_colors_and_legend() {
        let svg = Chart::new("t", "x", "y")
            .series("first", &[(0.0, 1.0), (1.0, 2.0)])
            .series("second", &[(0.0, 2.0), (1.0, 1.0)])
            .render();
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert!(svg.contains(">first<"));
        assert!(svg.contains(">second<"));
    }

    #[test]
    fn single_series_hides_legend() {
        let svg = basic_chart().render();
        assert!(!svg.contains(">a<"), "no legend for a single series");
    }

    #[test]
    fn empty_chart_reports_no_data() {
        let svg = Chart::new("t", "x", "y").render();
        assert!(svg.contains("no data"));
    }

    #[test]
    fn nonfinite_points_are_skipped() {
        let svg = Chart::new("t", "x", "y")
            .series(
                "s",
                &[
                    (0.0, f64::NAN),
                    (1.0, 1.0),
                    (f64::INFINITY, 2.0),
                    (2.0, 3.0),
                ],
            )
            .render();
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn degenerate_single_point_renders() {
        let svg = Chart::new("t", "x", "y")
            .series("s", &[(5.0, 5.0)])
            .render();
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"), "no NaN coordinates: {svg}");
    }

    #[test]
    fn titles_are_escaped() {
        let svg = Chart::new("a < b & c", "x", "y")
            .series("s", &[(0.0, 1.0)])
            .render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn grid_composes_charts() {
        let grid = SubplotGrid::new(2)
            .add(basic_chart())
            .add(basic_chart())
            .add(basic_chart());
        let svg = grid.render();
        assert_eq!(svg.matches("<svg").count(), 1, "one document");
        assert_eq!(svg.matches(">runtime<").count(), 3, "three subplots");
        // 2 columns x 2 rows of 420x300 cells
        assert!(svg.contains("width=\"840\""));
        assert!(svg.contains("height=\"600\""));
        assert!(svg.contains("translate(420,0)"));
        assert!(svg.contains("translate(0,300)"));
    }

    #[test]
    fn empty_grid_renders_stub() {
        let svg = SubplotGrid::new(3).render();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_panics() {
        SubplotGrid::new(0);
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_panics() {
        Chart::new("t", "x", "y").size(10.0, 10.0);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(5.0), "5");
        assert_eq!(fmt_tick(2.5), "2.50");
        assert_eq!(fmt_tick(12000.0), "1.2e4");
        assert_eq!(fmt_tick(0.001), "1.0e-3");
    }
}
