//! "Nice numbers" axis tick selection (Heckbert's algorithm).

/// Returns at most `max_ticks + 1` tick positions covering `[lo, hi]`,
/// snapped to 1/2/5 × 10^k step sizes. Returns an empty vector for
/// degenerate or non-finite input.
pub fn nice_ticks(lo: f64, hi: f64, max_ticks: usize) -> Vec<f64> {
    if !lo.is_finite() || !hi.is_finite() || hi <= lo || max_ticks == 0 {
        return Vec::new();
    }
    let span = nice_number(hi - lo, false);
    let step = nice_number(span / (max_ticks as f64), true);
    let start = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    // guard against FP drift producing an extra tick
    while t <= hi + step * 1e-9 {
        // snap -0.0 and FP noise near zero
        out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
        if out.len() > max_ticks + 2 {
            break;
        }
    }
    out
}

/// The "nice number" ≥ (round=false) or ≈ (round=true) `x`: 1, 2, or 5
/// times a power of ten.
fn nice_number(x: f64, round: bool) -> f64 {
    let exp = x.log10().floor();
    let frac = x / 10f64.powf(exp);
    let nice = if round {
        match frac {
            f if f < 1.5 => 1.0,
            f if f < 3.0 => 2.0,
            f if f < 7.0 => 5.0,
            _ => 10.0,
        }
    } else {
        match frac {
            f if f <= 1.0 => 1.0,
            f if f <= 2.0 => 2.0,
            f if f <= 5.0 => 5.0,
            _ => 10.0,
        }
    };
    nice * 10f64.powf(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_range() {
        let t = nice_ticks(0.0, 10.0, 5);
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn fractional_range() {
        let t = nice_ticks(0.0, 1.0, 5);
        assert_eq!(t, vec![0.0, 0.2, 0.4, 0.6000000000000001, 0.8, 1.0]);
    }

    #[test]
    fn offset_range_starts_inside() {
        let t = nice_ticks(3.2, 17.8, 6);
        assert!(t.first().copied().unwrap() >= 3.2);
        assert!(t.last().copied().unwrap() <= 17.8 + 1e-9);
        assert!(t.len() >= 3);
    }

    #[test]
    fn negative_range() {
        let t = nice_ticks(-10.0, 10.0, 4);
        assert!(t.contains(&0.0));
        assert!(t.iter().all(|&v| (-10.0..=10.0).contains(&v)));
    }

    #[test]
    fn tiny_range() {
        let t = nice_ticks(0.001, 0.002, 5);
        assert!(!t.is_empty());
        assert!(t.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(nice_ticks(1.0, 1.0, 5).is_empty());
        assert!(nice_ticks(2.0, 1.0, 5).is_empty());
        assert!(nice_ticks(f64::NAN, 1.0, 5).is_empty());
        assert!(nice_ticks(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn tick_count_bounded() {
        for (lo, hi) in [(0.0, 7.0), (0.0, 97.0), (5.0, 2300.0), (-3.3, 4.7)] {
            let t = nice_ticks(lo, hi, 6);
            assert!(t.len() <= 8, "too many ticks for ({lo}, {hi}): {t:?}");
            assert!(t.len() >= 2, "too few ticks for ({lo}, {hi}): {t:?}");
        }
    }

    #[test]
    fn nice_number_values() {
        assert_eq!(nice_number(1.0, false), 1.0);
        assert_eq!(nice_number(3.0, false), 5.0);
        assert_eq!(nice_number(7.0, false), 10.0);
        assert_eq!(nice_number(2.9, true), 2.0);
        assert_eq!(
            nice_number(3.0, true),
            5.0,
            "Heckbert boundary: 3 rounds up"
        );
        assert_eq!(nice_number(69.0, true), 50.0);
        assert_eq!(
            nice_number(70.0, true),
            100.0,
            "Heckbert boundary: 7 rounds up"
        );
    }
}
